//! Randomized property tests for the memory-hierarchy building blocks,
//! driven by the in-tree deterministic [`SimRng`] (the build environment is
//! offline, so no external property-testing framework is available). Each
//! test sweeps many seeded cases; a failing case index pins the exact input.

use oasis_engine::SimRng;
use oasis_mem::cache::Cache;
use oasis_mem::frames::FrameAllocator;
use oasis_mem::layout::AddressSpace;
use oasis_mem::tlb::Tlb;
use oasis_mem::types::{PageSize, Va, Vpn};
use std::collections::HashSet;

const CASES: u64 = 48;

/// The TLB never exceeds capacity and `contains` agrees with
/// access-hit behaviour under arbitrary fill/invalidate sequences.
#[test]
fn tlb_capacity_and_consistency() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x71B0 + case);
        let n = rng.gen_range(1..300) as usize;
        let mut tlb = Tlb::new(16, 4);
        let mut shadow: HashSet<u64> = HashSet::new();
        for _ in 0..n {
            let op = rng.gen_range(0..3);
            let vpn = rng.gen_range(0..64);
            match op {
                0 => {
                    let evicted = tlb.fill(Vpn(vpn));
                    shadow.insert(vpn);
                    if let Some(e) = evicted {
                        shadow.remove(&e.0);
                    }
                }
                1 => {
                    let hit = tlb.access(Vpn(vpn));
                    assert_eq!(hit, shadow.contains(&vpn), "case {case}");
                }
                _ => {
                    tlb.invalidate(Vpn(vpn));
                    shadow.remove(&vpn);
                }
            }
            assert!(tlb.len() <= tlb.capacity(), "case {case}");
            assert_eq!(tlb.len(), shadow.len(), "case {case}");
        }
    }
}

/// A full TLB set always evicts its least-recently-used entry.
#[test]
fn tlb_evicts_lru() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x1B0E + case);
        let extra = rng.gen_range(0..1000);
        // Fully associative 8-entry TLB.
        let mut tlb = Tlb::new(8, 8);
        for i in 0..8u64 {
            tlb.fill(Vpn(i));
        }
        // Touch everything except `victim`.
        let victim = extra % 8;
        for i in 0..8u64 {
            if i != victim {
                tlb.access(Vpn(i));
            }
        }
        let evicted = tlb.fill(Vpn(1000 + extra));
        assert_eq!(evicted, Some(Vpn(victim)), "case {case}");
    }
}

/// Frame allocator: capacity is never exceeded; eviction only happens
/// at capacity; LRU victim is correct.
#[test]
fn frames_respect_capacity() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xF4A3 + case);
        let cap = rng.gen_range(1..16);
        let n = rng.gen_range(1..200) as usize;
        let mut f = FrameAllocator::new(Some(cap));
        for _ in 0..n {
            let vpn = rng.gen_range(0..64);
            let victim = f.insert(Vpn(vpn));
            assert!(f.resident() <= cap, "case {case}");
            if let Some(v) = victim {
                assert_ne!(v.0, vpn, "case {case}: never evicts what it inserts");
                assert!(!f.contains(v), "case {case}");
            }
            assert!(f.contains(Vpn(vpn)), "case {case}");
        }
    }
}

/// Frame allocator under sustained pressure: with a working set far larger
/// than capacity, every insert past the warm-up evicts exactly the LRU
/// page, the eviction counter advances in lockstep, and the resident set
/// always matches the most-recently-used window.
#[test]
fn frames_under_pressure_evict_strict_lru() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x9E55 + case);
        let cap = rng.gen_range(2..8);
        let mut f = FrameAllocator::new(Some(cap));
        let mut lru_shadow: Vec<u64> = Vec::new(); // front = LRU
        let mut expected_evictions = 0u64;
        for step in 0..400u64 {
            // Skew toward new pages so the allocator is always saturated.
            let vpn = rng.gen_range(0..1_000_000);
            let already = lru_shadow.contains(&vpn);
            let victim = f.insert(Vpn(vpn));
            if already {
                lru_shadow.retain(|&v| v != vpn);
                lru_shadow.push(vpn);
                assert_eq!(
                    victim, None,
                    "case {case} step {step}: refresh must not evict"
                );
            } else {
                if lru_shadow.len() as u64 == cap {
                    let expect_victim = lru_shadow.remove(0);
                    expected_evictions += 1;
                    assert_eq!(
                        victim,
                        Some(Vpn(expect_victim)),
                        "case {case} step {step}: wrong LRU victim"
                    );
                } else {
                    assert_eq!(victim, None, "case {case} step {step}");
                }
                lru_shadow.push(vpn);
            }
            assert_eq!(
                f.resident(),
                lru_shadow.len() as u64,
                "case {case} step {step}"
            );
            assert_eq!(f.evictions(), expected_evictions, "case {case} step {step}");
            assert_eq!(f.lru(), lru_shadow.first().map(|&v| Vpn(v)), "case {case}");
        }
        // The whole resident set is enumerable and consistent.
        let mut resident: Vec<u64> = f.pages().map(|v| v.0).collect();
        resident.sort_unstable();
        let mut expected = lru_shadow.clone();
        expected.sort_unstable();
        assert_eq!(resident, expected, "case {case}");
    }
}

/// Cache: line residency is idempotent — a hit right after any access
/// to the same address is guaranteed.
#[test]
fn cache_access_then_hit() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xCAC4 + case);
        let n = rng.gen_range(1..200) as usize;
        let mut c = Cache::new(16 * 1024, 4, 64);
        for _ in 0..n {
            let a = rng.gen_range(0..1_000_000);
            c.access(Va(a));
            assert!(c.access(Va(a)), "case {case}: immediate re-access must hit");
        }
    }
}

/// Address space: objects never overlap and reverse lookup returns the
/// allocation that contains the address.
#[test]
fn address_space_objects_disjoint() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0xAD52 + case);
        let n = rng.gen_range(1..40) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..8_000_000)).collect();
        let mut space = AddressSpace::new();
        let ids: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| space.alloc(format!("o{i}"), *s))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let o = space.object(*id).clone();
            // First and last byte resolve back to this object.
            assert_eq!(space.object_containing(o.base).expect("base").id, *id);
            let last = Va(o.base.0 + o.size - 1);
            assert_eq!(space.object_containing(last).expect("last").id, *id);
            // No overlap with the next object.
            if i + 1 < ids.len() {
                let next = space.object(ids[i + 1]);
                assert!(o.base.0 + o.size <= next.base.0, "case {case}");
            }
            // Page counts consistent across page sizes.
            assert!(
                o.page_count(PageSize::Small4K) >= o.page_count(PageSize::Large2M),
                "case {case}"
            );
        }
        assert_eq!(space.live_bytes(), sizes.iter().sum::<u64>(), "case {case}");
    }
}

/// VPN round-trip: va -> vpn -> base covers va's page for both sizes.
#[test]
fn vpn_round_trip() {
    for case in 0..CASES * 4 {
        let mut rng = SimRng::seed_from_u64(0x4B17 + case);
        let raw = rng.gen_range(0..(1u64 << 48));
        for size in [PageSize::Small4K, PageSize::Large2M] {
            let va = Va(raw);
            let vpn = va.vpn(size);
            let base = vpn.base(size);
            assert!(base.0 <= va.canonical().0, "case {case}");
            assert!(va.canonical().0 - base.0 < size.bytes(), "case {case}");
            assert_eq!(base.0 % size.bytes(), 0, "case {case}");
        }
    }
}
