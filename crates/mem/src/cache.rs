//! Set-associative data-cache model (presence only, LRU replacement).
//!
//! Models the per-GPU L2 cache of Table I (256 KB, 16-way, 64 B lines).
//! Like the TLB model, it tracks which line addresses are resident so the
//! simulator can decide whether an access pays DRAM latency; it does not
//! hold data. Lines are indexed by their 64-bit line address (VA >> 6),
//! tagged with the owning memory location epoch so invalidations on page
//! migration can drop stale lines.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::FxHashSet;

use crate::types::{PageSize, Va, Vpn};

#[derive(Debug, Clone)]
struct Set {
    lines: Vec<(u64, u64)>, // (line address, last-use stamp)
}

/// A set-associative cache over 64-bit line addresses.
///
/// # Example
///
/// ```
/// use oasis_mem::{Cache, Va};
///
/// let mut l2 = Cache::new(256 * 1024, 16, 64); // Table I's L2
/// assert!(!l2.access(Va(0x1000))); // miss fills the line
/// assert!(l2.access(Va(0x1020)));  // same 64 B line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Set>,
    ways: usize,
    line_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Total resident lines across all sets. The target set of any line is
    /// directly computable from its address, so no reverse map is kept.
    resident: usize,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (zero sizes, non-power-of-two line
    /// size or set count, capacity not divisible by `ways * line_bytes`).
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            capacity_bytes > 0 && ways > 0 && line_bytes > 0,
            "cache geometry must be positive"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            (lines as usize).is_multiple_of(ways),
            "line count must be a multiple of associativity"
        );
        let num_sets = lines as usize / ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            sets: (0..num_sets)
                .map(|_| Set {
                    lines: Vec::with_capacity(ways),
                })
                .collect(),
            ways,
            line_shift: line_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
            resident: 0,
        }
    }

    fn line_addr(&self, va: Va) -> u64 {
        va.canonical().0 >> self.line_shift
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    /// Accesses the line containing `va`; fills it on a miss. Returns
    /// whether it hit.
    pub fn access(&mut self, va: Va) -> bool {
        let line = self.line_addr(va);
        self.stamp += 1;
        let idx = self.set_index(line);
        let stamp = self.stamp;
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(l) = set.lines.iter_mut().find(|(a, _)| *a == line) {
            l.1 = stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.lines.len() == ways {
            let (lru_pos, _) = set
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .expect("full set is nonempty");
            set.lines.swap_remove(lru_pos);
        } else {
            self.resident += 1;
        }
        set.lines.push((line, stamp));
        false
    }

    /// Drops every line belonging to virtual page `vpn` (done when a page
    /// migrates away or a duplicate is collapsed). Returns how many lines
    /// were dropped.
    pub fn invalidate_page(&mut self, vpn: Vpn, page: PageSize) -> usize {
        let first_line = (vpn.0 << page.shift()) >> self.line_shift;
        let lines_per_page = (page.bytes() >> self.line_shift).max(1);
        let mut dropped = 0;
        for line in first_line..first_line + lines_per_page {
            let idx = self.set_index(line);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.lines.iter().position(|(a, _)| *a == line) {
                set.lines.swap_remove(pos);
                self.resident -= 1;
                dropped += 1;
            }
        }
        dropped
    }

    /// Drops all contents.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.lines.clear();
        }
        self.resident = 0;
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resets hit/miss counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl Snapshot for Cache {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.stamp);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.sets.len() as u64);
        // Line order within a set matters to `swap_remove` tie-breaking, so
        // it is preserved verbatim (see the Tlb snapshot).
        for set in &self.sets {
            w.u16(set.lines.len() as u16);
            for &(line, stamp) in &set.lines {
                w.u64(line);
                w.u64(stamp);
            }
        }
    }
}

impl Restore for Cache {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.stamp = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        let n_sets = r.usize()?;
        if n_sets != self.sets.len() {
            return Err(r.malformed(format!(
                "snapshot has {n_sets} sets, this cache has {}",
                self.sets.len()
            )));
        }
        self.resident = 0;
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for idx in 0..n_sets {
            let n_lines = r.u16()? as usize;
            if n_lines > self.ways {
                return Err(r.malformed(format!(
                    "set {idx} holds {n_lines} lines but associativity is {}",
                    self.ways
                )));
            }
            let set = &mut self.sets[idx];
            set.lines.clear();
            for _ in 0..n_lines {
                let line = r.u64()?;
                let stamp = r.u64()?;
                set.lines.push((line, stamp));
                if !seen.insert(line) {
                    return Err(r.malformed(format!("line {line:#x} cached twice")));
                }
                self.resident += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(256 * 1024, 16, 64);
        assert!(!c.access(Va(0x1000)));
        assert!(c.access(Va(0x1000)));
        assert!(c.access(Va(0x1038))); // same 64B line region? 0x1038 is line 0x40.. no:
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(Va(0x100)));
        assert!(c.access(Va(0x13F))); // 0x100..0x140 is one 64 B line
        assert!(!c.access(Va(0x140))); // next line
    }

    #[test]
    fn lru_within_set() {
        // 2 lines per set, 2 sets (256 B cache, 64 B lines, 2-way).
        let mut c = Cache::new(256, 2, 64);
        // Lines 0, 2, 4 all map to set 0.
        c.access(Va(0)); // line 0
        c.access(Va(128)); // line 2
        c.access(Va(0)); // refresh line 0; line 2 is LRU
        c.access(Va(256)); // line 4 evicts line 2
        assert!(c.access(Va(0)));
        assert!(!c.access(Va(128)));
    }

    #[test]
    fn invalidate_page_drops_all_its_lines() {
        let mut c = Cache::new(64 * 1024, 16, 64);
        let vpn = Vpn(3);
        let base = vpn.base(PageSize::Small4K).0;
        for off in (0..4096).step_by(64) {
            c.access(Va(base + off));
        }
        let resident_before = c.len();
        assert_eq!(resident_before, 64);
        let dropped = c.invalidate_page(vpn, PageSize::Small4K);
        assert_eq!(dropped, 64);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_page_spares_other_pages() {
        let mut c = Cache::new(64 * 1024, 16, 64);
        c.access(Va(Vpn(1).base(PageSize::Small4K).0));
        c.access(Va(Vpn(2).base(PageSize::Small4K).0));
        c.invalidate_page(Vpn(1), PageSize::Small4K);
        assert!(c.access(Va(Vpn(2).base(PageSize::Small4K).0)));
    }

    #[test]
    fn flush_and_stats() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(Va(0));
        c.access(Va(0));
        assert_eq!(c.stats(), (1, 1));
        c.flush();
        assert!(c.is_empty());
        c.reset_stats();
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(1024, 2, 60);
    }

    #[test]
    fn snapshot_round_trips_replacement_state() {
        let mut c = Cache::new(256, 2, 64);
        c.access(Va(0));
        c.access(Va(128));
        c.access(Va(0));
        let mut w = ByteWriter::new();
        c.snapshot(&mut w);

        let mut fresh = Cache::new(256, 2, 64);
        let buf = w.into_vec();
        let mut r = ByteReader::new("cache", &buf);
        fresh.restore(&mut r).expect("valid cache state");
        assert_eq!(fresh.stats(), c.stats());
        assert_eq!(fresh.len(), c.len());
        // Same next eviction decision as the original.
        assert_eq!(fresh.access(Va(256)), c.access(Va(256)));
        assert_eq!(fresh.access(Va(128)), c.access(Va(128)));
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let mut big = Cache::new(64 * 1024, 16, 64);
        big.access(Va(0));
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut small = Cache::new(256, 2, 64);
        let mut r = ByteReader::new("cache", &buf);
        assert!(small.restore(&mut r).is_err());
    }

    #[test]
    fn tagged_va_maps_to_same_line_as_untagged() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(Va(0x100));
        assert!(c.access(Va(0x100 | (0x11u64 << 48))));
    }
}
