//! Set-associative TLB model with true-LRU replacement.
//!
//! Used for both the per-CU-cluster L1 TLB (32-entry) and the GPU-shared
//! L2 TLB (512-entry, 16-way) of Table I. Only presence is modelled — the
//! actual translation lives in the page tables — so a TLB entry is just a
//! cached VPN plus LRU state.

use std::collections::HashMap;

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::SimError;

use crate::types::Vpn;

#[derive(Debug, Clone)]
struct Set {
    /// (vpn, last-use stamp) pairs; at most `ways` of them.
    lines: Vec<(Vpn, u64)>,
}

/// A set-associative TLB.
///
/// # Example
///
/// ```
/// use oasis_mem::{Tlb, Vpn};
///
/// let mut tlb = Tlb::new(32, 32); // Table I's L1 TLB
/// assert!(!tlb.access(Vpn(7)));   // cold miss
/// tlb.fill(Vpn(7));
/// assert!(tlb.access(Vpn(7)));    // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Set>,
    ways: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Shootdowns that actually removed an entry. Observational only:
    /// deliberately excluded from snapshots/digests so enabling metrics
    /// cannot perturb replay.
    shootdowns: u64,
    /// Reverse index so global invalidations don't scan every set.
    where_is: HashMap<Vpn, usize>,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries organized as `ways`-way
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`, or if the
    /// resulting set count is not a power of two (required for indexing).
    /// Use [`Tlb::try_new`] for a fallible variant.
    pub fn new(entries: usize, ways: usize) -> Self {
        match Self::try_new(entries, ways) {
            Ok(tlb) => tlb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the geometry instead of panicking.
    pub fn try_new(entries: usize, ways: usize) -> Result<Self, SimError> {
        if ways == 0 || entries == 0 {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("TLB geometry must be positive (entries={entries}, ways={ways})"),
            ));
        }
        if !entries.is_multiple_of(ways) {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("entries ({entries}) must be a multiple of ways ({ways})"),
            ));
        }
        let num_sets = entries / ways;
        if !num_sets.is_power_of_two() {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("set count ({num_sets}) must be a power of two"),
            ));
        }
        Ok(Tlb {
            sets: (0..num_sets)
                .map(|_| Set {
                    lines: Vec::with_capacity(ways),
                })
                .collect(),
            ways,
            stamp: 0,
            hits: 0,
            misses: 0,
            shootdowns: 0,
            where_is: HashMap::new(),
        })
    }

    fn set_index(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.sets.len() - 1)
    }

    /// Looks up `vpn`; on a hit, refreshes its LRU position. Returns whether
    /// it hit.
    pub fn access(&mut self, vpn: Vpn) -> bool {
        self.stamp += 1;
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(line) = set.lines.iter_mut().find(|(v, _)| *v == vpn) {
            line.1 = self.stamp;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs a translation for `vpn`, evicting the LRU entry of its set
    /// if the set is full. Returns the evicted VPN, if any.
    pub fn fill(&mut self, vpn: Vpn) -> Option<Vpn> {
        self.stamp += 1;
        let idx = self.set_index(vpn);
        let ways = self.ways;
        let stamp = self.stamp;
        let set = &mut self.sets[idx];
        if let Some(line) = set.lines.iter_mut().find(|(v, _)| *v == vpn) {
            line.1 = stamp;
            return None;
        }
        let evicted = if set.lines.len() == ways {
            // A full set is necessarily nonempty (ways > 0), so the min
            // always exists; map instead of unwrapping all the same.
            let lru_pos = set
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(pos, _)| pos);
            lru_pos.map(|pos| {
                let (old, _) = set.lines.swap_remove(pos);
                self.where_is.remove(&old);
                old
            })
        } else {
            None
        };
        set.lines.push((vpn, stamp));
        self.where_is.insert(vpn, idx);
        evicted
    }

    /// Invalidates the entry for `vpn` (a TLB shootdown). Returns whether an
    /// entry was present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        if let Some(idx) = self.where_is.remove(&vpn) {
            let set = &mut self.sets[idx];
            if let Some(pos) = set.lines.iter().position(|(v, _)| *v == vpn) {
                set.lines.swap_remove(pos);
                self.shootdowns += 1;
                return true;
            }
        }
        false
    }

    /// Drops every entry (full flush).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.lines.clear();
        }
        self.where_is.clear();
    }

    /// True if `vpn` is currently cached (does not touch LRU state).
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.where_is.contains_key(&vpn)
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.where_is.len()
    }

    /// True if the TLB caches nothing.
    pub fn is_empty(&self) -> bool {
        self.where_is.is_empty()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Iterates over every cached VPN (arbitrary order). Used by the
    /// sim-guard checker to assert TLB entries only exist for mapped pages.
    pub fn cached_vpns(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.where_is.keys().copied()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of shootdowns that removed a live entry. Not snapshotted —
    /// this counter feeds the metrics registry only.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Resets hit/miss counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl Snapshot for Tlb {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.stamp);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.sets.len() as u64);
        // Line order within a set is part of replacement behaviour
        // (`swap_remove` ties on position), so it is preserved verbatim —
        // and it is already deterministic, being driven only by the access
        // stream.
        for set in &self.sets {
            w.u16(set.lines.len() as u16);
            for &(vpn, stamp) in &set.lines {
                w.u64(vpn.0);
                w.u64(stamp);
            }
        }
    }
}

impl Restore for Tlb {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.stamp = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        let n_sets = r.usize()?;
        if n_sets != self.sets.len() {
            return Err(r.malformed(format!(
                "snapshot has {n_sets} sets, this TLB has {}",
                self.sets.len()
            )));
        }
        self.where_is.clear();
        for idx in 0..n_sets {
            let n_lines = r.u16()? as usize;
            if n_lines > self.ways {
                return Err(r.malformed(format!(
                    "set {idx} holds {n_lines} lines but associativity is {}",
                    self.ways
                )));
            }
            let set = &mut self.sets[idx];
            set.lines.clear();
            for _ in 0..n_lines {
                let vpn = Vpn(r.u64()?);
                let stamp = r.u64()?;
                set.lines.push((vpn, stamp));
                if self.where_is.insert(vpn, idx).is_some() {
                    return Err(r.malformed(format!("page {vpn:?} cached twice")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(32, 32);
        assert!(!tlb.access(Vpn(5)));
        assert_eq!(tlb.fill(Vpn(5)), None);
        assert!(tlb.access(Vpn(5)));
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Fully associative 4-entry TLB.
        let mut tlb = Tlb::new(4, 4);
        for i in 0..4 {
            tlb.fill(Vpn(i));
        }
        tlb.access(Vpn(0)); // 0 most recent; 1 is now LRU
        let evicted = tlb.fill(Vpn(99));
        assert_eq!(evicted, Some(Vpn(1)));
        assert!(tlb.contains(Vpn(0)));
        assert!(tlb.contains(Vpn(99)));
    }

    #[test]
    fn set_indexing_isolates_sets() {
        // 2 sets, 1 way: vpns with equal parity collide.
        let mut tlb = Tlb::new(2, 1);
        tlb.fill(Vpn(0));
        tlb.fill(Vpn(1));
        assert!(tlb.contains(Vpn(0)));
        assert!(tlb.contains(Vpn(1)));
        // Filling vpn 2 (even) evicts vpn 0, not vpn 1.
        assert_eq!(tlb.fill(Vpn(2)), Some(Vpn(0)));
        assert!(tlb.contains(Vpn(1)));
    }

    #[test]
    fn invalidate_removes_exactly_one() {
        let mut tlb = Tlb::new(8, 4);
        tlb.fill(Vpn(1));
        tlb.fill(Vpn(2));
        assert!(tlb.invalidate(Vpn(1)));
        assert!(!tlb.invalidate(Vpn(1)));
        assert!(!tlb.contains(Vpn(1)));
        assert!(tlb.contains(Vpn(2)));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(8, 4);
        for i in 0..8 {
            tlb.fill(Vpn(i));
        }
        tlb.flush();
        assert!(tlb.is_empty());
        assert!(!tlb.access(Vpn(0)));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut tlb = Tlb::new(2, 2);
        tlb.fill(Vpn(0));
        tlb.fill(Vpn(0));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Tlb::new(512, 16).capacity(), 512);
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn try_new_reports_bad_geometry() {
        assert!(Tlb::try_new(0, 4).is_err());
        assert!(Tlb::try_new(10, 4).is_err());
        assert!(Tlb::try_new(24, 4).is_err()); // 6 sets: not a power of two
        assert!(Tlb::try_new(32, 4).is_ok());
    }

    #[test]
    fn cached_vpns_lists_contents() {
        let mut tlb = Tlb::new(8, 4);
        tlb.fill(Vpn(3));
        tlb.fill(Vpn(4));
        let mut vpns: Vec<_> = tlb.cached_vpns().collect();
        vpns.sort();
        assert_eq!(vpns, vec![Vpn(3), Vpn(4)]);
    }

    #[test]
    fn snapshot_preserves_contents_lru_and_stats() {
        let mut tlb = Tlb::new(8, 4);
        for i in 0..6 {
            tlb.fill(Vpn(i));
        }
        tlb.access(Vpn(0));
        tlb.access(Vpn(42)); // a miss
        let mut w = ByteWriter::new();
        tlb.snapshot(&mut w);

        let mut fresh = Tlb::new(8, 4);
        let buf = w.into_vec();
        let mut r = ByteReader::new("tlb", &buf);
        fresh.restore(&mut r).expect("valid tlb state");
        assert_eq!(fresh.stats(), tlb.stats());
        assert_eq!(fresh.len(), tlb.len());
        // Replacement proceeds identically after restore.
        assert_eq!(fresh.fill(Vpn(100)), tlb.fill(Vpn(100)));
        assert_eq!(fresh.fill(Vpn(102)), tlb.fill(Vpn(102)));
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let mut big = Tlb::new(512, 16);
        big.fill(Vpn(1));
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut small = Tlb::new(32, 32);
        let mut r = ByteReader::new("tlb", &buf);
        assert!(small.restore(&mut r).is_err());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut tlb = Tlb::new(4, 4);
        tlb.fill(Vpn(1));
        tlb.access(Vpn(1));
        tlb.reset_stats();
        assert_eq!(tlb.stats(), (0, 0));
        assert!(tlb.contains(Vpn(1)));
    }
}
