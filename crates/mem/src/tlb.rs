//! Set-associative TLB model with true-LRU replacement.
//!
//! Used for both the per-CU-cluster L1 TLB (32-entry) and the GPU-shared
//! L2 TLB (512-entry, 16-way) of Table I. Only presence is modelled — the
//! actual translation lives in the page tables — so a TLB entry is just a
//! cached VPN plus LRU state.
//!
//! Storage is a flat structure-of-arrays arena: all sets' lines live in
//! two parallel vectors (`line_vpn`, `line_stamp`) sliced by set index, so
//! a lookup is one multiply plus a short contiguous scan with no pointer
//! chasing and no hashing. The reverse `where_is` map the old layout kept
//! for shootdowns was pure redundancy — the target set of any VPN is
//! directly computable — and is gone entirely.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::SimError;
use oasis_engine::FxHashSet;

use crate::types::Vpn;

/// A set-associative TLB.
///
/// # Example
///
/// ```
/// use oasis_mem::{Tlb, Vpn};
///
/// let mut tlb = Tlb::new(32, 32); // Table I's L1 TLB
/// assert!(!tlb.access(Vpn(7)));   // cold miss
/// tlb.fill(Vpn(7));
/// assert!(tlb.access(Vpn(7)));    // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `line_vpn[set * ways + i]` for `i < set_len[set]` are the cached
    /// VPNs of `set`; `line_stamp` holds the matching last-use stamps.
    line_vpn: Vec<Vpn>,
    line_stamp: Vec<u64>,
    set_len: Vec<u16>,
    num_sets: usize,
    ways: usize,
    cached: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Shootdowns that actually removed an entry. Observational only:
    /// deliberately excluded from snapshots/digests so enabling metrics
    /// cannot perturb replay.
    shootdowns: u64,
    /// Last-hit memo: `line_vpn[memo_idx] == memo_vpn` while valid
    /// (`memo_idx != u32::MAX`). Consecutive transactions land on the same
    /// page (64 B transactions, 4 KB pages), so this short-circuits the
    /// set scan. Pure cache — cleared by any mutation that moves lines,
    /// never serialized.
    memo_vpn: Vpn,
    memo_idx: u32,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries organized as `ways`-way
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`, or if the
    /// resulting set count is not a power of two (required for indexing).
    /// Use [`Tlb::try_new`] for a fallible variant.
    pub fn new(entries: usize, ways: usize) -> Self {
        match Self::try_new(entries, ways) {
            Ok(tlb) => tlb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the geometry instead of panicking.
    pub fn try_new(entries: usize, ways: usize) -> Result<Self, SimError> {
        if ways == 0 || entries == 0 {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("TLB geometry must be positive (entries={entries}, ways={ways})"),
            ));
        }
        if !entries.is_multiple_of(ways) {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("entries ({entries}) must be a multiple of ways ({ways})"),
            ));
        }
        let num_sets = entries / ways;
        if !num_sets.is_power_of_two() {
            return Err(SimError::invariant(
                "tlb-geometry",
                format!("set count ({num_sets}) must be a power of two"),
            ));
        }
        Ok(Tlb {
            line_vpn: vec![Vpn(0); entries],
            line_stamp: vec![0; entries],
            set_len: vec![0; num_sets],
            num_sets,
            ways,
            cached: 0,
            stamp: 0,
            hits: 0,
            misses: 0,
            shootdowns: 0,
            memo_vpn: Vpn(0),
            memo_idx: u32::MAX,
        })
    }

    #[inline]
    fn set_index(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) & (self.num_sets - 1)
    }

    /// Position of `vpn` within its set's occupied lines, if cached.
    #[inline]
    fn find(&self, base: usize, len: usize, vpn: Vpn) -> Option<usize> {
        self.line_vpn[base..base + len]
            .iter()
            .position(|&v| v == vpn)
    }

    /// Looks up `vpn`; on a hit, refreshes its LRU position. Returns whether
    /// it hit.
    #[inline]
    pub fn access(&mut self, vpn: Vpn) -> bool {
        self.stamp += 1;
        if self.memo_idx != u32::MAX && vpn == self.memo_vpn {
            // Same page as the last hit; the memoized line is still live.
            // Identical effects to the scan path: stamp refresh + hit.
            self.line_stamp[self.memo_idx as usize] = self.stamp;
            self.hits += 1;
            return true;
        }
        let base = self.set_index(vpn) * self.ways;
        let len = self.set_len[base / self.ways] as usize;
        if let Some(pos) = self.find(base, len, vpn) {
            self.line_stamp[base + pos] = self.stamp;
            self.hits += 1;
            self.memo_vpn = vpn;
            self.memo_idx = (base + pos) as u32;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs a translation for `vpn`, evicting the LRU entry of its set
    /// if the set is full. Returns the evicted VPN, if any.
    pub fn fill(&mut self, vpn: Vpn) -> Option<Vpn> {
        self.stamp += 1;
        let set = self.set_index(vpn);
        let base = set * self.ways;
        let len = self.set_len[set] as usize;
        if let Some(pos) = self.find(base, len, vpn) {
            self.line_stamp[base + pos] = self.stamp;
            return None;
        }
        let evicted = if len == self.ways {
            // A full set is necessarily nonempty (ways > 0). Evict the LRU
            // line with swap-remove semantics (last line moves into the
            // hole) — position ties are replacement-relevant, so this
            // must match the historical Vec::swap_remove exactly.
            let lru_pos = (0..len)
                .min_by_key(|&i| self.line_stamp[base + i])
                .expect("nonempty set");
            let old = self.line_vpn[base + lru_pos];
            self.line_vpn[base + lru_pos] = self.line_vpn[base + len - 1];
            self.line_stamp[base + lru_pos] = self.line_stamp[base + len - 1];
            self.set_len[set] -= 1;
            self.cached -= 1;
            self.memo_idx = u32::MAX; // lines moved
            Some(old)
        } else {
            None
        };
        let len = self.set_len[set] as usize;
        self.line_vpn[base + len] = vpn;
        self.line_stamp[base + len] = self.stamp;
        self.set_len[set] += 1;
        self.cached += 1;
        self.memo_vpn = vpn;
        self.memo_idx = (base + len) as u32;
        evicted
    }

    /// Invalidates the entry for `vpn` (a TLB shootdown). Returns whether an
    /// entry was present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_index(vpn);
        let base = set * self.ways;
        let len = self.set_len[set] as usize;
        if let Some(pos) = self.find(base, len, vpn) {
            self.line_vpn[base + pos] = self.line_vpn[base + len - 1];
            self.line_stamp[base + pos] = self.line_stamp[base + len - 1];
            self.set_len[set] -= 1;
            self.cached -= 1;
            self.shootdowns += 1;
            self.memo_idx = u32::MAX; // removed or moved a line
            true
        } else {
            false
        }
    }

    /// Drops every entry (full flush).
    pub fn flush(&mut self) {
        self.set_len.fill(0);
        self.cached = 0;
        self.memo_idx = u32::MAX;
    }

    /// True if `vpn` is currently cached (does not touch LRU state).
    pub fn contains(&self, vpn: Vpn) -> bool {
        let set = self.set_index(vpn);
        let base = set * self.ways;
        self.find(base, self.set_len[set] as usize, vpn).is_some()
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.cached
    }

    /// True if the TLB caches nothing.
    pub fn is_empty(&self) -> bool {
        self.cached == 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Iterates over every cached VPN (set order). Used by the sim-guard
    /// checker to assert TLB entries only exist for mapped pages.
    pub fn cached_vpns(&self) -> impl Iterator<Item = Vpn> + '_ {
        (0..self.num_sets).flat_map(move |set| {
            let base = set * self.ways;
            self.line_vpn[base..base + self.set_len[set] as usize]
                .iter()
                .copied()
        })
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of shootdowns that removed a live entry. Not snapshotted —
    /// this counter feeds the metrics registry only.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Resets hit/miss counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl Snapshot for Tlb {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.stamp);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.num_sets as u64);
        // Line order within a set is part of replacement behaviour
        // (swap-remove eviction ties on position), so it is preserved
        // verbatim — and it is already deterministic, being driven only by
        // the access stream.
        for set in 0..self.num_sets {
            let base = set * self.ways;
            let len = self.set_len[set] as usize;
            w.u16(len as u16);
            for i in 0..len {
                w.u64(self.line_vpn[base + i].0);
                w.u64(self.line_stamp[base + i]);
            }
        }
    }
}

impl Restore for Tlb {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.stamp = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        let n_sets = r.usize()?;
        if n_sets != self.num_sets {
            return Err(r.malformed(format!(
                "snapshot has {n_sets} sets, this TLB has {}",
                self.num_sets
            )));
        }
        self.cached = 0;
        self.memo_idx = u32::MAX;
        let mut seen: FxHashSet<Vpn> = FxHashSet::default();
        for set in 0..n_sets {
            let n_lines = r.u16()? as usize;
            if n_lines > self.ways {
                return Err(r.malformed(format!(
                    "set {set} holds {n_lines} lines but associativity is {}",
                    self.ways
                )));
            }
            let base = set * self.ways;
            self.set_len[set] = n_lines as u16;
            for i in 0..n_lines {
                let vpn = Vpn(r.u64()?);
                let stamp = r.u64()?;
                self.line_vpn[base + i] = vpn;
                self.line_stamp[base + i] = stamp;
                if !seen.insert(vpn) {
                    return Err(r.malformed(format!("page {vpn:?} cached twice")));
                }
                self.cached += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::new(32, 32);
        assert!(!tlb.access(Vpn(5)));
        assert_eq!(tlb.fill(Vpn(5)), None);
        assert!(tlb.access(Vpn(5)));
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Fully associative 4-entry TLB.
        let mut tlb = Tlb::new(4, 4);
        for i in 0..4 {
            tlb.fill(Vpn(i));
        }
        tlb.access(Vpn(0)); // 0 most recent; 1 is now LRU
        let evicted = tlb.fill(Vpn(99));
        assert_eq!(evicted, Some(Vpn(1)));
        assert!(tlb.contains(Vpn(0)));
        assert!(tlb.contains(Vpn(99)));
    }

    #[test]
    fn set_indexing_isolates_sets() {
        // 2 sets, 1 way: vpns with equal parity collide.
        let mut tlb = Tlb::new(2, 1);
        tlb.fill(Vpn(0));
        tlb.fill(Vpn(1));
        assert!(tlb.contains(Vpn(0)));
        assert!(tlb.contains(Vpn(1)));
        // Filling vpn 2 (even) evicts vpn 0, not vpn 1.
        assert_eq!(tlb.fill(Vpn(2)), Some(Vpn(0)));
        assert!(tlb.contains(Vpn(1)));
    }

    #[test]
    fn invalidate_removes_exactly_one() {
        let mut tlb = Tlb::new(8, 4);
        tlb.fill(Vpn(1));
        tlb.fill(Vpn(2));
        assert!(tlb.invalidate(Vpn(1)));
        assert!(!tlb.invalidate(Vpn(1)));
        assert!(!tlb.contains(Vpn(1)));
        assert!(tlb.contains(Vpn(2)));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(8, 4);
        for i in 0..8 {
            tlb.fill(Vpn(i));
        }
        tlb.flush();
        assert!(tlb.is_empty());
        assert!(!tlb.access(Vpn(0)));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut tlb = Tlb::new(2, 2);
        tlb.fill(Vpn(0));
        tlb.fill(Vpn(0));
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Tlb::new(512, 16).capacity(), 512);
    }

    #[test]
    #[should_panic(expected = "must be a multiple")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn try_new_reports_bad_geometry() {
        assert!(Tlb::try_new(0, 4).is_err());
        assert!(Tlb::try_new(10, 4).is_err());
        assert!(Tlb::try_new(24, 4).is_err()); // 6 sets: not a power of two
        assert!(Tlb::try_new(32, 4).is_ok());
    }

    #[test]
    fn cached_vpns_lists_contents() {
        let mut tlb = Tlb::new(8, 4);
        tlb.fill(Vpn(3));
        tlb.fill(Vpn(4));
        let mut vpns: Vec<_> = tlb.cached_vpns().collect();
        vpns.sort();
        assert_eq!(vpns, vec![Vpn(3), Vpn(4)]);
    }

    #[test]
    fn snapshot_preserves_contents_lru_and_stats() {
        let mut tlb = Tlb::new(8, 4);
        for i in 0..6 {
            tlb.fill(Vpn(i));
        }
        tlb.access(Vpn(0));
        tlb.access(Vpn(42)); // a miss
        let mut w = ByteWriter::new();
        tlb.snapshot(&mut w);

        let mut fresh = Tlb::new(8, 4);
        let buf = w.into_vec();
        let mut r = ByteReader::new("tlb", &buf);
        fresh.restore(&mut r).expect("valid tlb state");
        assert_eq!(fresh.stats(), tlb.stats());
        assert_eq!(fresh.len(), tlb.len());
        // Replacement proceeds identically after restore.
        assert_eq!(fresh.fill(Vpn(100)), tlb.fill(Vpn(100)));
        assert_eq!(fresh.fill(Vpn(102)), tlb.fill(Vpn(102)));
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let mut big = Tlb::new(512, 16);
        big.fill(Vpn(1));
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut small = Tlb::new(32, 32);
        let mut r = ByteReader::new("tlb", &buf);
        assert!(small.restore(&mut r).is_err());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut tlb = Tlb::new(4, 4);
        tlb.fill(Vpn(1));
        tlb.access(Vpn(1));
        tlb.reset_stats();
        assert_eq!(tlb.stats(), (0, 0));
        assert!(tlb.contains(Vpn(1)));
    }
}
