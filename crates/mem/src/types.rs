//! Base value types used throughout the simulator.

use std::fmt;

/// Identifies one GPU in the system (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u8);

impl GpuId {
    /// Index into per-GPU vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

/// A device that can hold physical pages: the host CPU or one of the GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceId {
    /// The host CPU's system memory (where managed pages start out).
    Host,
    /// A GPU's local HBM/GDDR memory.
    Gpu(GpuId),
}

impl DeviceId {
    /// True if this device is the host CPU.
    pub fn is_host(self) -> bool {
        matches!(self, DeviceId::Host)
    }

    /// The GPU id if this device is a GPU.
    pub fn gpu(self) -> Option<GpuId> {
        match self {
            DeviceId::Host => None,
            DeviceId::Gpu(g) => Some(g),
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Host => write!(f, "Host"),
            DeviceId::Gpu(g) => write!(f, "{g}"),
        }
    }
}

impl From<GpuId> for DeviceId {
    fn from(g: GpuId) -> Self {
        DeviceId::Gpu(g)
    }
}

/// A 64-bit virtual address. Only the low 48 bits address memory; the upper
/// bits are available for OASIS pointer tagging (Fig. 9 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Va(pub u64);

/// Number of pointer bits that actually address memory.
pub const ADDR_BITS: u32 = 48;

/// Mask selecting the addressable low 48 bits of a pointer.
pub const ADDR_MASK: u64 = (1u64 << ADDR_BITS) - 1;

impl Va {
    /// The canonical (untagged) address: upper tag bits stripped, as done by
    /// TBI/LAM/UAI hardware on dereference.
    pub fn canonical(self) -> Va {
        Va(self.0 & ADDR_MASK)
    }

    /// The raw upper 16 tag bits.
    pub fn tag_bits(self) -> u16 {
        (self.0 >> ADDR_BITS) as u16
    }

    /// Virtual page number under the given page size.
    pub fn vpn(self, size: PageSize) -> Vpn {
        Vpn((self.0 & ADDR_MASK) >> size.shift())
    }

    /// Byte offset within the page under the given page size.
    pub fn page_offset(self, size: PageSize) -> u64 {
        (self.0 & ADDR_MASK) & (size.bytes() - 1)
    }
}

impl fmt::Display for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

/// A virtual page number (address divided by page size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The base virtual address of this page.
    pub fn base(self, size: PageSize) -> Va {
        Va(self.0 << size.shift())
    }

    /// The next page number.
    pub fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// Identifies a data object (one `cudaMallocManaged` allocation).
///
/// The hardware O-Table only encodes the low 4 bits in the pointer, but the
/// software side (and OASIS-InMem) supports up to 2^16 objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u16);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store. Corresponds to the "W" bit in the page-fault error code that
    /// the OP-Controller inspects to learn an object's policy.
    Write,
}

impl AccessKind {
    /// True for writes (the fault error code's W bit).
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// Supported translation granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// Standard 4 KiB pages (the paper's baseline).
    #[default]
    Small4K,
    /// 2 MiB large pages (studied in Fig. 19).
    Large2M,
}

impl PageSize {
    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 * 1024,
            PageSize::Large2M => 2 * 1024 * 1024,
        }
    }

    /// log2 of the page size.
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Small4K => 12,
            PageSize::Large2M => 21,
        }
    }

    /// Number of pages needed to hold `bytes`, rounding up.
    pub fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Small4K => write!(f, "4KB"),
            PageSize::Large2M => write!(f, "2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn va_tag_and_canonical() {
        let raw = Va(0xABCD_0000_1234_5678);
        assert_eq!(raw.canonical(), Va(0x0000_0000_1234_5678));
        assert_eq!(raw.tag_bits(), 0xABCD);
    }

    #[test]
    fn vpn_round_trips_through_base() {
        for size in [PageSize::Small4K, PageSize::Large2M] {
            let va = Va(7 * size.bytes() + 123);
            let vpn = va.vpn(size);
            assert_eq!(vpn, Vpn(7));
            assert_eq!(vpn.base(size), Va(7 * size.bytes()));
            assert_eq!(va.page_offset(size), 123);
        }
    }

    #[test]
    fn tagged_pointer_translates_like_untagged() {
        let tagged = Va((0b1_0001u64 << ADDR_BITS) | 0x42_0000);
        let untagged = Va(0x42_0000);
        assert_eq!(
            tagged.vpn(PageSize::Small4K),
            untagged.vpn(PageSize::Small4K)
        );
    }

    #[test]
    fn page_size_math() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Large2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Small4K.pages_for(1), 1);
        assert_eq!(PageSize::Small4K.pages_for(4096), 1);
        assert_eq!(PageSize::Small4K.pages_for(4097), 2);
        assert_eq!(PageSize::Large2M.pages_for(32 << 20), 16);
        assert_eq!(PageSize::Small4K.pages_for(0), 0);
    }

    #[test]
    fn device_id_helpers() {
        assert!(DeviceId::Host.is_host());
        assert_eq!(DeviceId::Host.gpu(), None);
        let d: DeviceId = GpuId(3).into();
        assert!(!d.is_host());
        assert_eq!(d.gpu(), Some(GpuId(3)));
        assert_eq!(GpuId(3).index(), 3);
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(GpuId(2).to_string(), "GPU2");
        assert_eq!(DeviceId::Host.to_string(), "Host");
        assert_eq!(ObjectId(5).to_string(), "obj5");
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
        assert_eq!(PageSize::Small4K.to_string(), "4KB");
        assert!(Vpn(16).to_string().contains("10"));
    }

    #[test]
    fn access_kind_write_bit() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }
}
