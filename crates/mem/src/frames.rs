//! Per-device physical-frame accounting with LRU residency tracking.
//!
//! GPUs have finite local memory (4 GB in Table I). Under oversubscription
//! (§VI-D of the paper) migrating a page into a full GPU first evicts the
//! least-recently-used resident page back to the host. This structure tracks
//! which virtual pages are resident on a device and in what recency order.
//!
//! Recency lives in a slot arena threaded by an intrusive doubly-linked
//! list (head = LRU, tail = MRU): `touch` is an O(1) unlink/relink instead
//! of the ordered-map remove+insert it replaces, which matters because the
//! simulator touches the allocator on every local access. Stamps are
//! assigned monotonically and only ever at the list tail, so list order and
//! stamp order are the same order — snapshots serialize the list front to
//! back and produce exactly the stamp-sorted byte stream of the old layout.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::FxHashMap;

use crate::types::Vpn;

/// Null link in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One arena slot: a page this device has ever held, with its residency
/// and LRU-list state. Slots are never freed — a page that loses residency
/// keeps its slot (cheap: a few words) and reuses it if it returns.
#[derive(Debug, Clone, Copy)]
struct Slot {
    vpn: Vpn,
    stamp: u64,
    prev: u32,
    next: u32,
    resident: bool,
}

/// Tracks the set of pages resident in one device's memory, in LRU order.
///
/// # Example
///
/// ```
/// use oasis_mem::{FrameAllocator, Vpn};
///
/// let mut frames = FrameAllocator::new(Some(2));
/// frames.insert(Vpn(1));
/// frames.insert(Vpn(2));
/// // The device is full: inserting evicts the LRU page.
/// assert_eq!(frames.insert(Vpn(3)), Some(Vpn(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Maximum resident pages; `None` = unlimited (the host).
    capacity_pages: Option<u64>,
    /// vpn -> slot id (persists across residency changes).
    index: FxHashMap<Vpn, u32>,
    /// The slot arena; resident slots are threaded onto the LRU list.
    slots: Vec<Slot>,
    /// LRU end of the list (first eviction victim); `NIL` when empty.
    head: u32,
    /// MRU end of the list; `NIL` when empty.
    tail: u32,
    resident_count: u64,
    next_stamp: u64,
    evictions: u64,
    /// Frames retired after ECC poisoning; each reduces the effective
    /// capacity by one for the rest of the run.
    quarantined: u64,
}

impl FrameAllocator {
    /// Creates an allocator holding at most `capacity_pages` pages, or
    /// unlimited if `None`.
    pub fn new(capacity_pages: Option<u64>) -> Self {
        FrameAllocator {
            capacity_pages,
            index: FxHashMap::default(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_count: 0,
            next_stamp: 0,
            evictions: 0,
            quarantined: 0,
        }
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> u64 {
        self.resident_count
    }

    /// Configured capacity.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity_pages
    }

    /// True if `vpn` is resident.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.index
            .get(&vpn)
            .is_some_and(|&s| self.slots[s as usize].resident)
    }

    /// Capacity after subtracting quarantined frames; `None` = unlimited.
    pub fn effective_capacity(&self) -> Option<u64> {
        self.capacity_pages
            .map(|cap| cap.saturating_sub(self.quarantined))
    }

    /// True if inserting one more page would exceed the effective capacity.
    pub fn is_full(&self) -> bool {
        self.effective_capacity()
            .is_some_and(|cap| self.resident() >= cap)
    }

    /// True if no usable frame remains at all: every configured frame is
    /// quarantined, so nothing can ever be made resident.
    pub fn out_of_frames(&self) -> bool {
        self.effective_capacity() == Some(0)
    }

    /// Retires the frame holding `vpn` after an ECC poison event: the page
    /// loses residency and the frame is permanently removed from the
    /// usable pool. Returns whether the page was resident.
    pub fn quarantine(&mut self, vpn: Vpn) -> bool {
        let present = self.remove(vpn);
        if present {
            self.quarantined += 1;
        }
        present
    }

    /// Number of frames quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Marks `vpn` resident (or refreshes its recency if already resident).
    ///
    /// If the device is full, the LRU page is evicted first and returned;
    /// the caller is responsible for migrating its data and fixing page
    /// tables.
    pub fn insert(&mut self, vpn: Vpn) -> Option<Vpn> {
        if let Some(&s) = self.index.get(&vpn) {
            if self.slots[s as usize].resident {
                self.refresh(s);
                return None;
            }
        }
        let victim = if self.is_full() && self.head != NIL {
            // A full device necessarily has a list head; the NIL check is
            // the graceful fall-through for a zero-capacity allocator.
            let h = self.head;
            self.unlink(h);
            self.slots[h as usize].resident = false;
            self.resident_count -= 1;
            self.evictions += 1;
            Some(self.slots[h as usize].vpn)
        } else {
            None
        };
        let s = self.slot_for(vpn);
        let stamp = self.bump();
        self.slots[s as usize].stamp = stamp;
        self.slots[s as usize].resident = true;
        self.link_tail(s);
        self.resident_count += 1;
        victim
    }

    /// Refreshes `vpn`'s recency (it was just accessed). No-op if absent.
    pub fn touch(&mut self, vpn: Vpn) {
        if let Some(&s) = self.index.get(&vpn) {
            if self.slots[s as usize].resident {
                self.refresh(s);
            }
        }
    }

    /// Removes `vpn` from residency (migrated away / freed). Returns whether
    /// it was present.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        if let Some(&s) = self.index.get(&vpn) {
            if self.slots[s as usize].resident {
                self.unlink(s);
                self.slots[s as usize].resident = false;
                self.resident_count -= 1;
                return true;
            }
        }
        false
    }

    /// The current LRU page, if any.
    pub fn lru(&self) -> Option<Vpn> {
        (self.head != NIL).then(|| self.slots[self.head as usize].vpn)
    }

    /// Number of capacity evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates over all resident pages (arbitrary order). Used by the
    /// sim-guard checker to reconcile allocator state with page tables.
    pub fn pages(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.slots.iter().filter(|s| s.resident).map(|s| s.vpn)
    }

    /// Iterates over all resident pages in recency order (LRU first).
    /// Deterministic across runs, which makes it the index space for
    /// seed-driven ECC victim selection.
    pub fn pages_by_recency(&self) -> impl Iterator<Item = Vpn> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head), move |&s| {
            let n = self.slots[s as usize].next;
            (n != NIL).then_some(n)
        })
        .map(move |s| self.slots[s as usize].vpn)
    }

    /// Re-stamps resident slot `s` as most recent: unlink, bump, relink at
    /// the tail. O(1), replacing the old ordered-map remove+insert.
    fn refresh(&mut self, s: u32) {
        self.unlink(s);
        let stamp = self.bump();
        self.slots[s as usize].stamp = stamp;
        self.link_tail(s);
    }

    /// The arena slot for `vpn`, allocating one on first sight.
    fn slot_for(&mut self, vpn: Vpn) -> u32 {
        if let Some(&s) = self.index.get(&vpn) {
            return s;
        }
        let s = u32::try_from(self.slots.len()).expect("frame arena exceeds u32 slots");
        self.slots.push(Slot {
            vpn,
            stamp: 0,
            prev: NIL,
            next: NIL,
            resident: false,
        });
        self.index.insert(vpn, s);
        s
    }

    fn unlink(&mut self, s: u32) {
        let (p, n) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if p == NIL {
            self.head = n;
        } else {
            self.slots[p as usize].next = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.slots[n as usize].prev = p;
        }
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = NIL;
    }

    fn link_tail(&mut self, s: u32) {
        self.slots[s as usize].prev = self.tail;
        self.slots[s as usize].next = NIL;
        if self.tail == NIL {
            self.head = s;
        } else {
            self.slots[self.tail as usize].next = s;
        }
        self.tail = s;
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

impl Snapshot for FrameAllocator {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.next_stamp);
        w.u64(self.evictions);
        w.u64(self.quarantined);
        // Stamps are only ever assigned at the list tail and increase
        // monotonically, so walking the list front to back emits the
        // (stamp, vpn) pairs in ascending stamp order — the exact byte
        // stream the previous ordered-map layout produced.
        w.u64(self.resident_count);
        let mut s = self.head;
        while s != NIL {
            let slot = &self.slots[s as usize];
            w.u64(slot.stamp);
            w.u64(slot.vpn.0);
            s = slot.next;
        }
    }
}

impl Restore for FrameAllocator {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        // Capacity is configuration, not state; it stays as constructed.
        self.next_stamp = r.u64()?;
        self.evictions = r.u64()?;
        self.quarantined = r.u64()?;
        if self
            .capacity_pages
            .is_some_and(|cap| self.quarantined > cap)
        {
            return Err(r.malformed(format!(
                "{} quarantined frames exceed capacity {:?}",
                self.quarantined, self.capacity_pages
            )));
        }
        self.index.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
        self.resident_count = 0;
        let n = r.usize()?;
        // Accept pairs in any order (matching the old map-based restore):
        // collect, validate, then rebuild the list in ascending stamp order.
        let mut pairs: Vec<(u64, Vpn)> = Vec::with_capacity(n);
        for _ in 0..n {
            let stamp = r.u64()?;
            let vpn = Vpn(r.u64()?);
            if stamp >= self.next_stamp {
                return Err(r.malformed(format!(
                    "stamp {stamp} not below next_stamp {}",
                    self.next_stamp
                )));
            }
            pairs.push((stamp, vpn));
        }
        pairs.sort_unstable_by_key(|&(stamp, _)| stamp);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(r.malformed(format!("duplicate resident page {:?}", w[1].1)));
            }
        }
        for (stamp, vpn) in pairs {
            if self.contains(vpn) {
                return Err(r.malformed(format!("duplicate resident page {vpn:?}")));
            }
            let s = self.slot_for(vpn);
            self.slots[s as usize].stamp = stamp;
            self.slots[s as usize].resident = true;
            self.link_tail(s);
            self.resident_count += 1;
        }
        if self
            .effective_capacity()
            .is_some_and(|cap| self.resident() > cap)
        {
            return Err(r.malformed(format!(
                "{} resident pages exceed effective capacity {:?}",
                self.resident(),
                self.effective_capacity()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_evicts() {
        let mut f = FrameAllocator::new(None);
        for i in 0..10_000 {
            assert_eq!(f.insert(Vpn(i)), None);
        }
        assert_eq!(f.resident(), 10_000);
        assert!(!f.is_full());
        assert_eq!(f.evictions(), 0);
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        assert!(f.is_full());
        f.touch(Vpn(1)); // 2 is now LRU
        assert_eq!(f.insert(Vpn(4)), Some(Vpn(2)));
        assert!(f.contains(Vpn(1)));
        assert!(!f.contains(Vpn(2)));
        assert_eq!(f.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut f = FrameAllocator::new(Some(2));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        assert_eq!(f.insert(Vpn(1)), None); // refresh, no eviction
        assert_eq!(f.insert(Vpn(3)), Some(Vpn(2))); // 2 was LRU after refresh
    }

    #[test]
    fn remove_frees_capacity() {
        let mut f = FrameAllocator::new(Some(1));
        f.insert(Vpn(1));
        assert!(f.remove(Vpn(1)));
        assert!(!f.remove(Vpn(1)));
        assert_eq!(f.insert(Vpn(2)), None);
    }

    #[test]
    fn lru_reports_oldest() {
        let mut f = FrameAllocator::new(Some(10));
        assert_eq!(f.lru(), None);
        f.insert(Vpn(5));
        f.insert(Vpn(6));
        assert_eq!(f.lru(), Some(Vpn(5)));
        f.touch(Vpn(5));
        assert_eq!(f.lru(), Some(Vpn(6)));
    }

    #[test]
    fn touch_absent_is_noop() {
        let mut f = FrameAllocator::new(Some(2));
        f.touch(Vpn(9));
        assert_eq!(f.resident(), 0);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(FrameAllocator::new(Some(7)).capacity(), Some(7));
        assert_eq!(FrameAllocator::new(None).capacity(), None);
    }

    #[test]
    fn recency_iteration_walks_lru_to_mru() {
        let mut f = FrameAllocator::new(None);
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        f.touch(Vpn(1));
        let order: Vec<_> = f.pages_by_recency().collect();
        assert_eq!(order, vec![Vpn(2), Vpn(3), Vpn(1)]);
        // Removal splices the list without disturbing neighbors.
        f.remove(Vpn(3));
        let order: Vec<_> = f.pages_by_recency().collect();
        assert_eq!(order, vec![Vpn(2), Vpn(1)]);
    }

    #[test]
    fn snapshot_preserves_lru_order_and_counters() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        f.touch(Vpn(1));
        f.insert(Vpn(4)); // evicts 2
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);

        let mut g = FrameAllocator::new(Some(3));
        let buf = w.into_vec();
        let mut r = ByteReader::new("frames", &buf);
        g.restore(&mut r).expect("valid frame state");
        assert_eq!(g.resident(), f.resident());
        assert_eq!(g.evictions(), 1);
        assert_eq!(g.lru(), f.lru());
        // The restored allocator evicts the same victim next.
        assert_eq!(g.insert(Vpn(9)), f.insert(Vpn(9)));
    }

    #[test]
    fn snapshot_of_identical_states_is_bit_identical() {
        let build = || {
            let mut f = FrameAllocator::new(None);
            for i in (0..64).rev() {
                f.insert(Vpn(i));
            }
            f
        };
        let mut a = ByteWriter::new();
        build().snapshot(&mut a);
        let mut b = ByteWriter::new();
        build().snapshot(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn restore_accepts_pairs_in_any_stream_order() {
        // The map-based layout serialized ascending but restored from any
        // order; the arena keeps that tolerance for hand-built streams.
        let mut w = ByteWriter::new();
        w.u64(10); // next_stamp
        w.u64(0); // evictions
        w.u64(0); // quarantined
        w.u64(3); // count
        for (stamp, vpn) in [(7u64, 3u64), (2, 1), (5, 2)] {
            w.u64(stamp);
            w.u64(vpn);
        }
        let buf = w.into_vec();
        let mut f = FrameAllocator::new(None);
        let mut r = ByteReader::new("frames", &buf);
        f.restore(&mut r).expect("valid state");
        let order: Vec<_> = f.pages_by_recency().collect();
        assert_eq!(order, vec![Vpn(1), Vpn(2), Vpn(3)]);
        assert_eq!(f.lru(), Some(Vpn(1)));
    }

    #[test]
    fn quarantine_shrinks_effective_capacity() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        assert!(f.quarantine(Vpn(2)));
        assert!(!f.quarantine(Vpn(2)), "already gone");
        assert_eq!(f.quarantined(), 1);
        assert_eq!(f.effective_capacity(), Some(2));
        assert!(!f.contains(Vpn(2)));
        assert!(f.is_full(), "2 resident pages fill 2 usable frames");
        // Inserting now evicts the LRU survivor, not the quarantined slot.
        assert_eq!(f.insert(Vpn(4)), Some(Vpn(1)));
        // Quarantining everything leaves the device unusable.
        f.quarantine(Vpn(3));
        f.quarantine(Vpn(4));
        assert!(f.out_of_frames());
        assert_eq!(f.resident(), 0);
        // Unlimited allocators track the count but never run out.
        let mut host = FrameAllocator::new(None);
        host.insert(Vpn(7));
        host.quarantine(Vpn(7));
        assert_eq!(host.quarantined(), 1);
        assert!(!host.out_of_frames());
    }

    #[test]
    fn quarantine_survives_snapshot_and_guards_restore() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.quarantine(Vpn(1));
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);
        let buf = w.into_vec();
        let mut g = FrameAllocator::new(Some(3));
        let mut r = ByteReader::new("frames", &buf);
        g.restore(&mut r).expect("valid state");
        assert_eq!(g.quarantined(), 1);
        assert_eq!(g.effective_capacity(), Some(2));
        // More quarantined frames than the target's capacity is rejected.
        let mut tiny = FrameAllocator::new(Some(0));
        let mut r = ByteReader::new("frames", &buf);
        assert!(tiny.restore(&mut r).is_err());
    }

    #[test]
    fn restore_rejects_overfull_state() {
        let mut big = FrameAllocator::new(None);
        for i in 0..8 {
            big.insert(Vpn(i));
        }
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut tiny = FrameAllocator::new(Some(2));
        let mut r = ByteReader::new("frames", &buf);
        assert!(tiny.restore(&mut r).is_err());
    }

    #[test]
    fn restore_rejects_duplicate_pages_and_stamps() {
        let encode = |pairs: &[(u64, u64)]| {
            let mut w = ByteWriter::new();
            w.u64(100);
            w.u64(0);
            w.u64(0);
            w.u64(pairs.len() as u64);
            for &(stamp, vpn) in pairs {
                w.u64(stamp);
                w.u64(vpn);
            }
            w.into_vec()
        };
        let mut f = FrameAllocator::new(None);
        let buf = encode(&[(1, 10), (2, 10)]); // same page twice
        let mut r = ByteReader::new("frames", &buf);
        assert!(f.restore(&mut r).is_err());
        let buf = encode(&[(3, 10), (3, 11)]); // same stamp twice
        let mut r = ByteReader::new("frames", &buf);
        assert!(f.restore(&mut r).is_err());
    }
}
