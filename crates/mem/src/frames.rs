//! Per-device physical-frame accounting with LRU residency tracking.
//!
//! GPUs have finite local memory (4 GB in Table I). Under oversubscription
//! (§VI-D of the paper) migrating a page into a full GPU first evicts the
//! least-recently-used resident page back to the host. This structure tracks
//! which virtual pages are resident on a device and in what recency order.

use std::collections::{BTreeMap, HashMap};

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};

use crate::types::Vpn;

/// Tracks the set of pages resident in one device's memory, in LRU order.
///
/// # Example
///
/// ```
/// use oasis_mem::{FrameAllocator, Vpn};
///
/// let mut frames = FrameAllocator::new(Some(2));
/// frames.insert(Vpn(1));
/// frames.insert(Vpn(2));
/// // The device is full: inserting evicts the LRU page.
/// assert_eq!(frames.insert(Vpn(3)), Some(Vpn(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Maximum resident pages; `None` = unlimited (the host).
    capacity_pages: Option<u64>,
    /// vpn -> recency stamp.
    stamps: HashMap<Vpn, u64>,
    /// recency stamp -> vpn (ordered; the smallest stamp is the LRU page).
    by_stamp: BTreeMap<u64, Vpn>,
    next_stamp: u64,
    evictions: u64,
    /// Frames retired after ECC poisoning; each reduces the effective
    /// capacity by one for the rest of the run.
    quarantined: u64,
}

impl FrameAllocator {
    /// Creates an allocator holding at most `capacity_pages` pages, or
    /// unlimited if `None`.
    pub fn new(capacity_pages: Option<u64>) -> Self {
        FrameAllocator {
            capacity_pages,
            stamps: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            evictions: 0,
            quarantined: 0,
        }
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> u64 {
        self.stamps.len() as u64
    }

    /// Configured capacity.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity_pages
    }

    /// True if `vpn` is resident.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.stamps.contains_key(&vpn)
    }

    /// Capacity after subtracting quarantined frames; `None` = unlimited.
    pub fn effective_capacity(&self) -> Option<u64> {
        self.capacity_pages
            .map(|cap| cap.saturating_sub(self.quarantined))
    }

    /// True if inserting one more page would exceed the effective capacity.
    pub fn is_full(&self) -> bool {
        self.effective_capacity()
            .is_some_and(|cap| self.resident() >= cap)
    }

    /// True if no usable frame remains at all: every configured frame is
    /// quarantined, so nothing can ever be made resident.
    pub fn out_of_frames(&self) -> bool {
        self.effective_capacity() == Some(0)
    }

    /// Retires the frame holding `vpn` after an ECC poison event: the page
    /// loses residency and the frame is permanently removed from the
    /// usable pool. Returns whether the page was resident.
    pub fn quarantine(&mut self, vpn: Vpn) -> bool {
        let present = self.remove(vpn);
        if present {
            self.quarantined += 1;
        }
        present
    }

    /// Number of frames quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Marks `vpn` resident (or refreshes its recency if already resident).
    ///
    /// If the device is full, the LRU page is evicted first and returned;
    /// the caller is responsible for migrating its data and fixing page
    /// tables.
    pub fn insert(&mut self, vpn: Vpn) -> Option<Vpn> {
        if self.stamps.contains_key(&vpn) {
            self.touch(vpn);
            return None;
        }
        let victim = if self.is_full() {
            // `is_full` implies at least one resident page, but fall through
            // gracefully rather than assert if the maps ever diverge.
            self.by_stamp.pop_first().map(|(_, victim)| {
                self.stamps.remove(&victim);
                self.evictions += 1;
                victim
            })
        } else {
            None
        };
        let stamp = self.bump();
        self.stamps.insert(vpn, stamp);
        self.by_stamp.insert(stamp, vpn);
        victim
    }

    /// Refreshes `vpn`'s recency (it was just accessed). No-op if absent.
    pub fn touch(&mut self, vpn: Vpn) {
        if let Some(stamp) = self.stamps.get_mut(&vpn) {
            self.by_stamp.remove(stamp);
            let new_stamp = self.next_stamp;
            self.next_stamp += 1;
            *stamp = new_stamp;
            self.by_stamp.insert(new_stamp, vpn);
        }
    }

    /// Removes `vpn` from residency (migrated away / freed). Returns whether
    /// it was present.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        if let Some(stamp) = self.stamps.remove(&vpn) {
            self.by_stamp.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// The current LRU page, if any.
    pub fn lru(&self) -> Option<Vpn> {
        self.by_stamp.values().next().copied()
    }

    /// Number of capacity evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates over all resident pages (arbitrary order). Used by the
    /// sim-guard checker to reconcile allocator state with page tables.
    pub fn pages(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.stamps.keys().copied()
    }

    /// Iterates over all resident pages in recency order (LRU first).
    /// Deterministic across runs, which makes it the index space for
    /// seed-driven ECC victim selection.
    pub fn pages_by_recency(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.by_stamp.values().copied()
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

impl Snapshot for FrameAllocator {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.u64(self.next_stamp);
        w.u64(self.evictions);
        w.u64(self.quarantined);
        // HashMap iteration order is nondeterministic; serialize by stamp so
        // identical states always produce identical bytes. `by_stamp` holds
        // the same (stamp, vpn) pairs as `stamps`, already ordered.
        w.u64(self.by_stamp.len() as u64);
        for (&stamp, &vpn) in &self.by_stamp {
            w.u64(stamp);
            w.u64(vpn.0);
        }
    }
}

impl Restore for FrameAllocator {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        // Capacity is configuration, not state; it stays as constructed.
        self.next_stamp = r.u64()?;
        self.evictions = r.u64()?;
        self.quarantined = r.u64()?;
        if self
            .capacity_pages
            .is_some_and(|cap| self.quarantined > cap)
        {
            return Err(r.malformed(format!(
                "{} quarantined frames exceed capacity {:?}",
                self.quarantined, self.capacity_pages
            )));
        }
        self.stamps.clear();
        self.by_stamp.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let stamp = r.u64()?;
            let vpn = Vpn(r.u64()?);
            if stamp >= self.next_stamp {
                return Err(r.malformed(format!(
                    "stamp {stamp} not below next_stamp {}",
                    self.next_stamp
                )));
            }
            if self.stamps.insert(vpn, stamp).is_some()
                || self.by_stamp.insert(stamp, vpn).is_some()
            {
                return Err(r.malformed(format!("duplicate resident page {vpn:?}")));
            }
        }
        if self
            .effective_capacity()
            .is_some_and(|cap| self.resident() > cap)
        {
            return Err(r.malformed(format!(
                "{} resident pages exceed effective capacity {:?}",
                self.resident(),
                self.effective_capacity()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_evicts() {
        let mut f = FrameAllocator::new(None);
        for i in 0..10_000 {
            assert_eq!(f.insert(Vpn(i)), None);
        }
        assert_eq!(f.resident(), 10_000);
        assert!(!f.is_full());
        assert_eq!(f.evictions(), 0);
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        assert!(f.is_full());
        f.touch(Vpn(1)); // 2 is now LRU
        assert_eq!(f.insert(Vpn(4)), Some(Vpn(2)));
        assert!(f.contains(Vpn(1)));
        assert!(!f.contains(Vpn(2)));
        assert_eq!(f.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut f = FrameAllocator::new(Some(2));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        assert_eq!(f.insert(Vpn(1)), None); // refresh, no eviction
        assert_eq!(f.insert(Vpn(3)), Some(Vpn(2))); // 2 was LRU after refresh
    }

    #[test]
    fn remove_frees_capacity() {
        let mut f = FrameAllocator::new(Some(1));
        f.insert(Vpn(1));
        assert!(f.remove(Vpn(1)));
        assert!(!f.remove(Vpn(1)));
        assert_eq!(f.insert(Vpn(2)), None);
    }

    #[test]
    fn lru_reports_oldest() {
        let mut f = FrameAllocator::new(Some(10));
        assert_eq!(f.lru(), None);
        f.insert(Vpn(5));
        f.insert(Vpn(6));
        assert_eq!(f.lru(), Some(Vpn(5)));
        f.touch(Vpn(5));
        assert_eq!(f.lru(), Some(Vpn(6)));
    }

    #[test]
    fn touch_absent_is_noop() {
        let mut f = FrameAllocator::new(Some(2));
        f.touch(Vpn(9));
        assert_eq!(f.resident(), 0);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(FrameAllocator::new(Some(7)).capacity(), Some(7));
        assert_eq!(FrameAllocator::new(None).capacity(), None);
    }

    #[test]
    fn snapshot_preserves_lru_order_and_counters() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        f.touch(Vpn(1));
        f.insert(Vpn(4)); // evicts 2
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);

        let mut g = FrameAllocator::new(Some(3));
        let buf = w.into_vec();
        let mut r = ByteReader::new("frames", &buf);
        g.restore(&mut r).expect("valid frame state");
        assert_eq!(g.resident(), f.resident());
        assert_eq!(g.evictions(), 1);
        assert_eq!(g.lru(), f.lru());
        // The restored allocator evicts the same victim next.
        assert_eq!(g.insert(Vpn(9)), f.insert(Vpn(9)));
    }

    #[test]
    fn snapshot_of_identical_states_is_bit_identical() {
        let build = || {
            let mut f = FrameAllocator::new(None);
            for i in (0..64).rev() {
                f.insert(Vpn(i));
            }
            f
        };
        let mut a = ByteWriter::new();
        build().snapshot(&mut a);
        let mut b = ByteWriter::new();
        build().snapshot(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn quarantine_shrinks_effective_capacity() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.insert(Vpn(3));
        assert!(f.quarantine(Vpn(2)));
        assert!(!f.quarantine(Vpn(2)), "already gone");
        assert_eq!(f.quarantined(), 1);
        assert_eq!(f.effective_capacity(), Some(2));
        assert!(!f.contains(Vpn(2)));
        assert!(f.is_full(), "2 resident pages fill 2 usable frames");
        // Inserting now evicts the LRU survivor, not the quarantined slot.
        assert_eq!(f.insert(Vpn(4)), Some(Vpn(1)));
        // Quarantining everything leaves the device unusable.
        f.quarantine(Vpn(3));
        f.quarantine(Vpn(4));
        assert!(f.out_of_frames());
        assert_eq!(f.resident(), 0);
        // Unlimited allocators track the count but never run out.
        let mut host = FrameAllocator::new(None);
        host.insert(Vpn(7));
        host.quarantine(Vpn(7));
        assert_eq!(host.quarantined(), 1);
        assert!(!host.out_of_frames());
    }

    #[test]
    fn quarantine_survives_snapshot_and_guards_restore() {
        let mut f = FrameAllocator::new(Some(3));
        f.insert(Vpn(1));
        f.insert(Vpn(2));
        f.quarantine(Vpn(1));
        let mut w = ByteWriter::new();
        f.snapshot(&mut w);
        let buf = w.into_vec();
        let mut g = FrameAllocator::new(Some(3));
        let mut r = ByteReader::new("frames", &buf);
        g.restore(&mut r).expect("valid state");
        assert_eq!(g.quarantined(), 1);
        assert_eq!(g.effective_capacity(), Some(2));
        // More quarantined frames than the target's capacity is rejected.
        let mut tiny = FrameAllocator::new(Some(0));
        let mut r = ByteReader::new("frames", &buf);
        assert!(tiny.restore(&mut r).is_err());
    }

    #[test]
    fn restore_rejects_overfull_state() {
        let mut big = FrameAllocator::new(None);
        for i in 0..8 {
            big.insert(Vpn(i));
        }
        let mut w = ByteWriter::new();
        big.snapshot(&mut w);
        let buf = w.into_vec();
        let mut tiny = FrameAllocator::new(Some(2));
        let mut r = ByteReader::new("frames", &buf);
        assert!(tiny.restore(&mut r).is_err());
    }
}
