//! Memory-hierarchy building blocks shared by the OASIS simulator.
//!
//! This crate provides the hardware structures that both the per-GPU model
//! and the UVM driver are assembled from:
//!
//! * base value types ([`types`]): GPU/device identifiers, virtual
//!   addresses, page numbers, object identifiers, access kinds;
//! * set-associative [`tlb::Tlb`] and [`cache::Cache`] models with LRU
//!   replacement;
//! * page tables ([`page`]): per-GPU local page tables with policy bits in
//!   the PTE (Fig. 12 of the paper) and the centralized host page table
//!   tracking page residency and read-duplicate copy sets;
//! * a per-device physical [`frames::FrameAllocator`] with LRU residency
//!   tracking for oversubscription eviction;
//! * the virtual address-space [`layout::AddressSpace`] mapping data objects
//!   (`cudaMallocManaged` allocations) to contiguous VA ranges.

pub mod cache;
pub mod frames;
pub mod layout;
pub mod page;
pub mod pte_word;
pub mod tlb;
pub mod types;

pub use cache::Cache;
pub use frames::FrameAllocator;
pub use layout::{AddressSpace, ObjectAllocation};
pub use page::{HostEntry, HostPageTable, LocalPageTable, PolicyBits, Pte, Residency};
pub use pte_word::PteWord;
pub use tlb::Tlb;
pub use types::{AccessKind, DeviceId, GpuId, ObjectId, PageSize, Va, Vpn};
