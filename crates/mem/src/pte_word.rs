//! Bit-exact PTE word encoding (Fig. 12 of the paper).
//!
//! The simulator's working representation is [`Pte`](crate::page::Pte);
//! this module provides the packed 64-bit form a real page-table walker
//! would read, for fidelity and for tests that check the paper's layout:
//!
//! ```text
//!  63 |  62:52  | 51:12 |  11    | 10:9        | 8:0
//!  XD | Unused  |  PFN  | Unused | Policy Bits | Flags
//! ```

use crate::page::PolicyBits;

/// Bit positions of Fig. 12.
const XD_BIT: u64 = 1 << 63;
const PFN_SHIFT: u32 = 12;
const PFN_MASK: u64 = ((1u64 << 40) - 1) << PFN_SHIFT; // bits 51:12
const POLICY_SHIFT: u32 = 9;
const POLICY_MASK: u64 = 0b11 << POLICY_SHIFT; // bits 10:9
const FLAGS_MASK: u64 = (1 << 9) - 1; // bits 8:0

/// x86-style flag bits within the 9-bit flags field.
pub mod flags {
    /// Translation valid.
    pub const PRESENT: u16 = 1 << 0;
    /// Writes permitted.
    pub const WRITABLE: u16 = 1 << 1;
    /// Page has been accessed.
    pub const ACCESSED: u16 = 1 << 5;
    /// Page has been written.
    pub const DIRTY: u16 = 1 << 6;
}

/// A packed 64-bit PTE word per Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteWord(pub u64);

impl PteWord {
    /// Builds a word from its fields.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` exceeds 40 bits or `pol_flags` exceeds 9 bits.
    pub fn new(pfn: u64, policy: PolicyBits, pte_flags: u16, execute_disable: bool) -> Self {
        assert!(pfn < (1 << 40), "PFN exceeds 40 bits");
        assert!(u64::from(pte_flags) <= FLAGS_MASK, "flags exceed 9 bits");
        let mut w = (pfn << PFN_SHIFT) & PFN_MASK;
        w |= u64::from(policy.bits()) << POLICY_SHIFT;
        w |= u64::from(pte_flags);
        if execute_disable {
            w |= XD_BIT;
        }
        PteWord(w)
    }

    /// The physical frame number (bits 51:12).
    pub fn pfn(self) -> u64 {
        (self.0 & PFN_MASK) >> PFN_SHIFT
    }

    /// The two policy bits (bits 10:9). Returns `None` for the reserved
    /// `0b10` encoding.
    pub fn policy(self) -> Option<PolicyBits> {
        PolicyBits::from_bits(((self.0 & POLICY_MASK) >> POLICY_SHIFT) as u8)
    }

    /// Replaces the policy bits, leaving everything else untouched — the
    /// in-place update the OP-Controller performs on a policy change.
    pub fn with_policy(self, policy: PolicyBits) -> Self {
        PteWord((self.0 & !POLICY_MASK) | (u64::from(policy.bits()) << POLICY_SHIFT))
    }

    /// The 9 flag bits (bits 8:0).
    pub fn pte_flags(self) -> u16 {
        (self.0 & FLAGS_MASK) as u16
    }

    /// The execute-disable bit (bit 63).
    pub fn execute_disable(self) -> bool {
        self.0 & XD_BIT != 0
    }

    /// True if the PRESENT flag is set.
    pub fn present(self) -> bool {
        self.pte_flags() & flags::PRESENT != 0
    }

    /// True if the WRITABLE flag is set.
    pub fn writable(self) -> bool {
        self.pte_flags() & flags::WRITABLE != 0
    }

    /// The bits Fig. 12 marks unused (62:52 and 11) — always zero in
    /// well-formed words.
    pub fn unused_bits(self) -> u64 {
        self.0 & !(XD_BIT | PFN_MASK | POLICY_MASK | FLAGS_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_fields() {
        for policy in [
            PolicyBits::OnTouch,
            PolicyBits::AccessCounter,
            PolicyBits::Duplication,
        ] {
            let w = PteWord::new(
                0xAB_CDEF_0123,
                policy,
                flags::PRESENT | flags::WRITABLE | flags::DIRTY,
                true,
            );
            assert_eq!(w.pfn(), 0xAB_CDEF_0123);
            assert_eq!(w.policy(), Some(policy));
            assert!(w.present());
            assert!(w.writable());
            assert!(w.execute_disable());
            assert_eq!(w.unused_bits(), 0);
        }
    }

    #[test]
    fn layout_matches_fig12() {
        let w = PteWord::new(1, PolicyBits::Duplication, flags::PRESENT, false);
        // PFN = 1 lands at bit 12; duplication = 0b11 at bits 10:9;
        // present at bit 0.
        assert_eq!(w.0, (1 << 12) | (0b11 << 9) | 1);
    }

    #[test]
    fn with_policy_only_touches_bits_10_9() {
        let w = PteWord::new(0xFFFF, PolicyBits::OnTouch, flags::PRESENT, true);
        let w2 = w.with_policy(PolicyBits::AccessCounter);
        assert_eq!(w2.policy(), Some(PolicyBits::AccessCounter));
        assert_eq!(w2.pfn(), w.pfn());
        assert_eq!(w2.pte_flags(), w.pte_flags());
        assert_eq!(w2.execute_disable(), w.execute_disable());
    }

    #[test]
    fn reserved_policy_encoding_is_none() {
        let w = PteWord(0b10 << 9);
        assert_eq!(w.policy(), None);
    }

    #[test]
    #[should_panic(expected = "PFN exceeds 40 bits")]
    fn oversized_pfn_rejected() {
        PteWord::new(1 << 40, PolicyBits::OnTouch, 0, false);
    }

    #[test]
    fn default_word_is_not_present() {
        assert!(!PteWord::default().present());
        assert!(!PteWord::default().writable());
    }
}
