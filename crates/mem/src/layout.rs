//! Virtual address-space layout: objects to VA ranges.
//!
//! An *object* is one `cudaMallocManaged` allocation — the granularity at
//! which OASIS learns page-management policies. The [`AddressSpace`] hands
//! out contiguous, 2 MiB-aligned VA ranges in allocation order (matching the
//! paper's "Obj_ID initialized based on the order of allocation"), and can
//! answer the reverse query *which object owns this page*, which the
//! characterization pass and the software shadow map both need.

use std::ops::Range;

use crate::types::{ObjectId, PageSize, Va, Vpn, ADDR_MASK};

/// Base VA of the managed heap. Arbitrary but nonzero so null pointers are
/// never valid, and 2 MiB-aligned so 4 KiB and 2 MiB runs see the same
/// object-to-page alignment.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Alignment of every object base (the 2 MiB large-page size).
pub const OBJECT_ALIGN: u64 = 2 * 1024 * 1024;

/// One managed allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectAllocation {
    /// Identifier, assigned in allocation order.
    pub id: ObjectId,
    /// Human-readable name (e.g. `"MT_Input"`), used in figures.
    pub name: String,
    /// Base virtual address (untagged).
    pub base: Va,
    /// Size in bytes.
    pub size: u64,
    /// Whether the object has been freed.
    pub freed: bool,
}

impl ObjectAllocation {
    /// The half-open VPN range covering this object under `page`.
    pub fn vpn_range(&self, page: PageSize) -> Range<u64> {
        let first = self.base.vpn(page).0;
        let last = Va(self.base.0 + self.size.max(1) - 1).vpn(page).0;
        first..last + 1
    }

    /// Number of pages the object spans under `page`.
    pub fn page_count(&self, page: PageSize) -> u64 {
        let r = self.vpn_range(page);
        r.end - r.start
    }

    /// True if the (untagged) address falls inside the object.
    pub fn contains(&self, va: Va) -> bool {
        let a = va.canonical().0;
        a >= self.base.0 && a < self.base.0 + self.size
    }

    /// The VA of byte `offset` within the object.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset` is out of bounds.
    pub fn va_of_offset(&self, offset: u64) -> Va {
        debug_assert!(offset < self.size, "offset {offset} out of bounds");
        Va(self.base.0 + offset)
    }
}

/// The managed virtual address space of one application run.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    objects: Vec<ObjectAllocation>,
    next_base: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            objects: Vec::new(),
            next_base: HEAP_BASE,
        }
    }

    /// Allocates `bytes` for a new object named `name`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or if the heap would exceed the 48-bit
    /// addressable range.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64) -> ObjectId {
        assert!(bytes > 0, "zero-sized allocation");
        let id =
            ObjectId(u16::try_from(self.objects.len()).expect("more than 2^16 objects allocated"));
        let base = self.next_base;
        let padded = bytes.div_ceil(OBJECT_ALIGN) * OBJECT_ALIGN;
        self.next_base = base + padded;
        assert!(self.next_base <= ADDR_MASK, "managed heap exhausted");
        self.objects.push(ObjectAllocation {
            id,
            name: name.into(),
            base: Va(base),
            size: bytes,
            freed: false,
        });
        id
    }

    /// Marks an object freed. Its VA range is not recycled (matching UVM
    /// allocators' typical behaviour within one run).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the object was already freed.
    pub fn free(&mut self, id: ObjectId) {
        let obj = &mut self.objects[id.0 as usize];
        assert!(!obj.freed, "{id} freed twice");
        obj.freed = true;
    }

    /// The allocation record for `id`.
    pub fn object(&self, id: ObjectId) -> &ObjectAllocation {
        &self.objects[id.0 as usize]
    }

    /// All allocations, live and freed, in allocation order.
    pub fn objects(&self) -> &[ObjectAllocation] {
        &self.objects
    }

    /// Number of allocations ever made.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if nothing was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The live object containing (untagged) `va`, if any.
    pub fn object_containing(&self, va: Va) -> Option<&ObjectAllocation> {
        let a = va.canonical().0;
        // Objects are sorted by base; binary search for the last base <= a.
        let idx = self.objects.partition_point(|o| o.base.0 <= a);
        if idx == 0 {
            return None;
        }
        let obj = &self.objects[idx - 1];
        (!obj.freed && obj.contains(va)).then_some(obj)
    }

    /// The live object owning page `vpn`, if any. Because object bases are
    /// 2 MiB-aligned, a page belongs to at most one object at either page
    /// size.
    pub fn object_of_vpn(&self, vpn: Vpn, page: PageSize) -> Option<&ObjectAllocation> {
        self.object_containing(vpn.base(page))
    }

    /// Sum of live object sizes in bytes (the application footprint).
    pub fn live_bytes(&self) -> u64 {
        self.objects
            .iter()
            .filter(|o| !o.freed)
            .map(|o| o.size)
            .sum()
    }

    /// Every VPN belonging to live objects under `page`.
    pub fn live_vpns(&self, page: PageSize) -> impl Iterator<Item = Vpn> + '_ {
        self.objects
            .iter()
            .filter(|o| !o.freed)
            .flat_map(move |o| o.vpn_range(page).map(Vpn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential_and_aligned() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 10);
        let y = a.alloc("y", 3 * 1024 * 1024);
        let z = a.alloc("z", 1);
        assert_eq!(x, ObjectId(0));
        assert_eq!(y, ObjectId(1));
        assert_eq!(z, ObjectId(2));
        for o in a.objects() {
            assert_eq!(o.base.0 % OBJECT_ALIGN, 0);
        }
        assert_eq!(a.object(y).base.0, HEAP_BASE + OBJECT_ALIGN);
        assert_eq!(a.object(z).base.0, HEAP_BASE + 3 * OBJECT_ALIGN);
    }

    #[test]
    fn page_counts_by_size() {
        let mut a = AddressSpace::new();
        let id = a.alloc("buf", 32 << 20); // 32 MB
        let o = a.object(id);
        assert_eq!(o.page_count(PageSize::Small4K), 8192);
        assert_eq!(o.page_count(PageSize::Large2M), 16);
    }

    #[test]
    fn reverse_lookup_by_va_and_vpn() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 4096 * 4);
        let y = a.alloc("y", 4096);
        let xo = a.object(x).clone();
        assert_eq!(a.object_containing(xo.base).unwrap().id, x);
        assert_eq!(
            a.object_containing(Va(xo.base.0 + 4096 * 4 - 1))
                .unwrap()
                .id,
            x
        );
        // Gap between objects (alignment padding) belongs to nobody.
        assert!(a.object_containing(Va(xo.base.0 + 4096 * 4)).is_none());
        let yo = a.object(y).clone();
        assert_eq!(
            a.object_of_vpn(yo.base.vpn(PageSize::Small4K), PageSize::Small4K)
                .unwrap()
                .id,
            y
        );
        assert!(a.object_containing(Va(0)).is_none());
    }

    #[test]
    fn tagged_pointers_resolve() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 4096);
        let base = a.object(x).base;
        let tagged = Va(base.0 | (0b1_0011u64 << 48));
        assert_eq!(a.object_containing(tagged).unwrap().id, x);
    }

    #[test]
    fn freed_objects_disappear_from_lookup() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 4096);
        let base = a.object(x).base;
        a.free(x);
        assert!(a.object_containing(base).is_none());
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 1);
        a.free(x);
        a.free(x);
    }

    #[test]
    fn live_vpns_cover_all_live_objects() {
        let mut a = AddressSpace::new();
        a.alloc("x", 4096 * 2);
        let y = a.alloc("y", 4096 * 3);
        a.free(y);
        let vpns: Vec<Vpn> = a.live_vpns(PageSize::Small4K).collect();
        assert_eq!(vpns.len(), 2);
    }

    #[test]
    fn va_of_offset() {
        let mut a = AddressSpace::new();
        let x = a.alloc("x", 100);
        let o = a.object(x);
        assert_eq!(o.va_of_offset(0), o.base);
        assert_eq!(o.va_of_offset(99).0, o.base.0 + 99);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        AddressSpace::new().alloc("x", 0);
    }
}
