//! Page tables: per-GPU local tables and the centralized host table.
//!
//! The PTE carries two policy bits (Fig. 12 of the paper): `00` on-touch
//! (default), `01` access-counter migration, `11` duplication. The host
//! (centralized) table is the UVM driver's source of truth: it records which
//! device currently owns each page, which GPUs hold read-only duplicates,
//! and the policy bits mirrored from the O-Table decision.
//!
//! Both tables are slot arenas: a compact `Vpn -> slot` index (FxHash, no
//! per-instance random state) plus dense parallel vectors holding the
//! actual entries. Lookups on the access fast path hash once and land in a
//! contiguous slot; invalidated pages leave a tombstone whose slot (and
//! index entry) is reused if the page is mapped again, so the arena never
//! churns allocation on migration ping-pong. Iteration and snapshots walk
//! the dense vectors instead of hash buckets.

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::error::TableError;
use oasis_engine::FxHashMap;

use crate::types::{DeviceId, GpuId, Vpn};

/// One-byte wire encoding of a [`DeviceId`]: `0xFF` is the host, anything
/// else a GPU index. Shared by every checkpoint section that names devices.
pub fn device_to_byte(dev: DeviceId) -> u8 {
    match dev {
        DeviceId::Host => 0xFF,
        DeviceId::Gpu(g) => g.0,
    }
}

/// Inverse of [`device_to_byte`].
pub fn device_from_byte(b: u8) -> DeviceId {
    if b == 0xFF {
        DeviceId::Host
    } else {
        DeviceId::Gpu(GpuId(b))
    }
}

/// The two policy bits stored in a PTE (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicyBits {
    /// `00` — on-touch migration (the default).
    #[default]
    OnTouch,
    /// `01` — access counter-based migration.
    AccessCounter,
    /// `11` — page duplication.
    Duplication,
}

impl PolicyBits {
    /// Raw two-bit encoding.
    pub const fn bits(self) -> u8 {
        match self {
            PolicyBits::OnTouch => 0b00,
            PolicyBits::AccessCounter => 0b01,
            PolicyBits::Duplication => 0b11,
        }
    }

    /// Decodes the two-bit encoding. `0b10` is reserved and returns `None`.
    pub const fn from_bits(bits: u8) -> Option<Self> {
        match bits {
            0b00 => Some(PolicyBits::OnTouch),
            0b01 => Some(PolicyBits::AccessCounter),
            0b11 => Some(PolicyBits::Duplication),
            _ => None,
        }
    }
}

/// A local page-table entry as seen by one GPU's GMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Device whose memory this translation targets. A GPU can map a page
    /// living in a peer GPU's memory (remote mapping, used by the
    /// access-counter policy).
    pub location: DeviceId,
    /// Whether stores are permitted. Read-only duplicates clear this; a
    /// store then raises a page-protection fault (write-collapse path).
    pub writable: bool,
    /// Policy bits mirrored into the PTE so GMMU/UVM know how to handle
    /// faults on this page without consulting the O-Table.
    pub policy: PolicyBits,
}

/// One GPU's local page table (walked by its GMMU).
#[derive(Debug, Clone, Default)]
pub struct LocalPageTable {
    /// `Vpn -> slot`. An index entry outlives invalidation (tombstone slot
    /// reuse), so presence here does not imply a valid translation.
    index: FxHashMap<Vpn, u32>,
    vpns: Vec<Vpn>,
    ptes: Vec<Option<Pte>>,
    live: usize,
    /// Count of inserts + successful invalidations. Observational only:
    /// excluded from snapshots/digests (metrics must not perturb replay).
    updates: u64,
}

impl LocalPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `vpn`, if a valid translation exists.
    #[inline]
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.index
            .get(&vpn)
            .and_then(|&i| self.ptes[i as usize].as_ref())
    }

    /// Installs (or replaces) the translation for `vpn`.
    pub fn insert(&mut self, vpn: Vpn, pte: Pte) {
        match self.index.get(&vpn) {
            Some(&i) => {
                let slot = &mut self.ptes[i as usize];
                if slot.is_none() {
                    self.live += 1;
                }
                *slot = Some(pte);
            }
            None => {
                let i = self.vpns.len() as u32;
                self.index.insert(vpn, i);
                self.vpns.push(vpn);
                self.ptes.push(Some(pte));
                self.live += 1;
            }
        }
        self.updates += 1;
    }

    /// Invalidates the translation for `vpn`. Returns the removed entry.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<Pte> {
        let removed = self
            .index
            .get(&vpn)
            .and_then(|&i| self.ptes[i as usize].take());
        if removed.is_some() {
            self.live -= 1;
            self.updates += 1;
        }
        removed
    }

    /// Total PTE mutations (inserts + removals). Not snapshotted — feeds
    /// the metrics registry only.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of valid translations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no translations are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all valid translations (dense slot order).
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &Pte)> {
        self.vpns
            .iter()
            .zip(self.ptes.iter())
            .filter_map(|(vpn, pte)| pte.as_ref().map(|p| (vpn, p)))
    }

    fn clear(&mut self) {
        self.index.clear();
        self.vpns.clear();
        self.ptes.clear();
        self.live = 0;
    }
}

impl Snapshot for LocalPageTable {
    fn snapshot(&self, w: &mut ByteWriter) {
        // Sort by VPN: slot order is insertion history, which is not part
        // of the semantic state, and the bytes feed both checkpoints and
        // state digests.
        let mut entries: Vec<(&Vpn, &Pte)> = self.iter().collect();
        entries.sort_by_key(|(vpn, _)| **vpn);
        w.u64(entries.len() as u64);
        for (vpn, pte) in entries {
            w.u64(vpn.0);
            w.u8(device_to_byte(pte.location));
            w.bool(pte.writable);
            w.u8(pte.policy.bits());
        }
    }
}

impl Restore for LocalPageTable {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let vpn = Vpn(r.u64()?);
            let location = device_from_byte(r.u8()?);
            let writable = r.bool()?;
            let bits = r.u8()?;
            let policy = PolicyBits::from_bits(bits)
                .ok_or_else(|| r.malformed(format!("reserved policy bits {bits:#04b}")))?;
            let i = self.vpns.len() as u32;
            if self.index.insert(vpn, i).is_some() {
                return Err(r.malformed(format!("page {vpn:?} mapped twice")));
            }
            self.vpns.push(vpn);
            self.ptes.push(Some(Pte {
                location,
                writable,
                policy,
            }));
            self.live += 1;
        }
        Ok(())
    }
}

/// Where a page's data lives right now, as a validated view of a
/// [`HostEntry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Exactly one device holds the page (it may be written there).
    Exclusive(DeviceId),
    /// The owner holds the master copy and `copy_mask` GPUs hold read-only
    /// duplicates; every copy is read-only.
    ReadShared {
        /// Device holding the master copy.
        owner: DeviceId,
        /// Bitmask of GPUs (bit *i* = GPU *i*) holding duplicates, not
        /// including the owner.
        copy_mask: u32,
    },
}

/// Centralized (host) page-table entry: the UVM driver's view of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostEntry {
    /// Device holding the authoritative copy.
    pub owner: DeviceId,
    /// GPUs holding read-only duplicates (excluding the owner).
    pub copy_mask: u32,
    /// GPUs holding *remote* mappings to the owner's copy (the
    /// access-counter policy's mode of sharing). These GPUs have a valid
    /// local PTE pointing at the owner's memory but hold no data.
    pub mapper_mask: u32,
    /// Policy bits recorded for the page.
    pub policy: PolicyBits,
    /// Historical bitmask of GPUs that ever touched the page (bit per GPU;
    /// used by the characterization pass, not by hardware).
    pub touched_by: u32,
}

impl HostEntry {
    /// A fresh host-resident page with default policy.
    pub fn new_on_host() -> Self {
        HostEntry {
            owner: DeviceId::Host,
            copy_mask: 0,
            mapper_mask: 0,
            policy: PolicyBits::OnTouch,
            touched_by: 0,
        }
    }

    /// A fresh page initially placed on `dev` (Fig. 21's striped placement).
    pub fn new_at(dev: DeviceId) -> Self {
        HostEntry {
            owner: dev,
            copy_mask: 0,
            mapper_mask: 0,
            policy: PolicyBits::OnTouch,
            touched_by: 0,
        }
    }

    /// Validated residency view.
    pub fn residency(&self) -> Residency {
        if self.copy_mask == 0 {
            Residency::Exclusive(self.owner)
        } else {
            Residency::ReadShared {
                owner: self.owner,
                copy_mask: self.copy_mask,
            }
        }
    }

    /// True if `gpu` can serve reads locally (owner or duplicate holder).
    pub fn readable_at(&self, gpu: GpuId) -> bool {
        self.owner == DeviceId::Gpu(gpu) || self.copy_mask & (1 << gpu.0) != 0
    }

    /// GPUs holding duplicates (excluding the owner).
    pub fn duplicate_holders(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..32u8)
            .filter(move |g| self.copy_mask & (1 << g) != 0)
            .map(GpuId)
    }

    /// Number of duplicate copies.
    pub fn duplicate_count(&self) -> u32 {
        self.copy_mask.count_ones()
    }

    /// GPUs holding remote mappings to the owner's copy.
    pub fn remote_mappers(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..32u8)
            .filter(move |g| self.mapper_mask & (1 << g) != 0)
            .map(GpuId)
    }

    /// True if `gpu` holds a remote mapping to this page.
    pub fn maps_remotely(&self, gpu: GpuId) -> bool {
        self.mapper_mask & (1 << gpu.0) != 0
    }

    /// Records that `gpu` touched the page (characterization metadata).
    pub fn mark_touched(&mut self, gpu: GpuId) {
        self.touched_by |= 1 << gpu.0;
    }

    /// True if more than one GPU has ever touched the page.
    pub fn touched_by_multiple(&self) -> bool {
        self.touched_by.count_ones() > 1
    }
}

/// The centralized page table maintained by the UVM driver on the host.
#[derive(Debug, Clone, Default)]
pub struct HostPageTable {
    /// `Vpn -> slot`; survives unregistration so freed slots are reused.
    index: FxHashMap<Vpn, u32>,
    vpns: Vec<Vpn>,
    entries: Vec<Option<HostEntry>>,
    live: usize,
}

impl HostPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `vpn`, if the page has been allocated.
    #[inline]
    pub fn get(&self, vpn: Vpn) -> Option<&HostEntry> {
        self.index
            .get(&vpn)
            .and_then(|&i| self.entries[i as usize].as_ref())
    }

    /// Mutable access to the entry for `vpn`.
    #[inline]
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut HostEntry> {
        match self.index.get(&vpn) {
            Some(&i) => self.entries[i as usize].as_mut(),
            None => None,
        }
    }

    /// Registers a freshly allocated page.
    ///
    /// Refuses a page that is already registered (overlapping allocation)
    /// without modifying the existing entry.
    pub fn register(&mut self, vpn: Vpn, entry: HostEntry) -> Result<(), TableError> {
        match self.index.get(&vpn) {
            Some(&i) => {
                let slot = &mut self.entries[i as usize];
                if slot.is_some() {
                    return Err(TableError::DoubleRegistration { vpn: vpn.0 });
                }
                *slot = Some(entry);
            }
            None => {
                let i = self.vpns.len() as u32;
                self.index.insert(vpn, i);
                self.vpns.push(vpn);
                self.entries.push(Some(entry));
            }
        }
        self.live += 1;
        Ok(())
    }

    /// Removes a page (object freed). Returns its final entry.
    pub fn unregister(&mut self, vpn: Vpn) -> Option<HostEntry> {
        let removed = self
            .index
            .get(&vpn)
            .and_then(|&i| self.entries[i as usize].take());
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over all registered pages (dense slot order).
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &HostEntry)> {
        self.vpns
            .iter()
            .zip(self.entries.iter())
            .filter_map(|(vpn, e)| e.as_ref().map(|e| (vpn, e)))
    }

    fn clear(&mut self) {
        self.index.clear();
        self.vpns.clear();
        self.entries.clear();
        self.live = 0;
    }
}

impl Snapshot for HostPageTable {
    fn snapshot(&self, w: &mut ByteWriter) {
        let mut entries: Vec<(&Vpn, &HostEntry)> = self.iter().collect();
        entries.sort_by_key(|(vpn, _)| **vpn);
        w.u64(entries.len() as u64);
        for (vpn, e) in entries {
            w.u64(vpn.0);
            w.u8(device_to_byte(e.owner));
            w.u32(e.copy_mask);
            w.u32(e.mapper_mask);
            w.u8(e.policy.bits());
            w.u32(e.touched_by);
        }
    }
}

impl Restore for HostPageTable {
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let vpn = Vpn(r.u64()?);
            let owner = device_from_byte(r.u8()?);
            let copy_mask = r.u32()?;
            let mapper_mask = r.u32()?;
            let bits = r.u8()?;
            let policy = PolicyBits::from_bits(bits)
                .ok_or_else(|| r.malformed(format!("reserved policy bits {bits:#04b}")))?;
            let touched_by = r.u32()?;
            let i = self.vpns.len() as u32;
            if self.index.insert(vpn, i).is_some() {
                return Err(r.malformed(format!("page {vpn:?} registered twice")));
            }
            self.vpns.push(vpn);
            self.entries.push(Some(HostEntry {
                owner,
                copy_mask,
                mapper_mask,
                policy,
                touched_by,
            }));
            self.live += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_bits_round_trip() {
        for p in [
            PolicyBits::OnTouch,
            PolicyBits::AccessCounter,
            PolicyBits::Duplication,
        ] {
            assert_eq!(PolicyBits::from_bits(p.bits()), Some(p));
        }
        assert_eq!(PolicyBits::from_bits(0b10), None);
        assert_eq!(PolicyBits::default(), PolicyBits::OnTouch);
    }

    #[test]
    fn local_table_insert_get_invalidate() {
        let mut pt = LocalPageTable::new();
        let pte = Pte {
            location: DeviceId::Gpu(GpuId(1)),
            writable: true,
            policy: PolicyBits::OnTouch,
        };
        assert!(pt.get(Vpn(9)).is_none());
        pt.insert(Vpn(9), pte);
        assert_eq!(pt.get(Vpn(9)), Some(&pte));
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.invalidate(Vpn(9)), Some(pte));
        assert!(pt.is_empty());
        assert_eq!(pt.invalidate(Vpn(9)), None);
    }

    #[test]
    fn local_table_reuses_tombstoned_slots() {
        let mut pt = LocalPageTable::new();
        let pte = Pte {
            location: DeviceId::Host,
            writable: true,
            policy: PolicyBits::OnTouch,
        };
        // Map/unmap the same page repeatedly (migration ping-pong): the
        // arena must not grow a slot per round.
        for _ in 0..100 {
            pt.insert(Vpn(5), pte);
            assert!(pt.invalidate(Vpn(5)).is_some());
        }
        assert!(pt.is_empty());
        assert_eq!(pt.vpns.len(), 1);
        assert_eq!(pt.updates(), 200);
    }

    #[test]
    fn residency_views() {
        let mut e = HostEntry::new_on_host();
        assert_eq!(e.residency(), Residency::Exclusive(DeviceId::Host));
        e.owner = DeviceId::Gpu(GpuId(0));
        e.copy_mask = 0b0110;
        assert_eq!(
            e.residency(),
            Residency::ReadShared {
                owner: DeviceId::Gpu(GpuId(0)),
                copy_mask: 0b0110
            }
        );
        assert!(e.readable_at(GpuId(0))); // owner
        assert!(e.readable_at(GpuId(1))); // duplicate
        assert!(e.readable_at(GpuId(2))); // duplicate
        assert!(!e.readable_at(GpuId(3)));
        assert_eq!(e.duplicate_count(), 2);
        let holders: Vec<_> = e.duplicate_holders().collect();
        assert_eq!(holders, vec![GpuId(1), GpuId(2)]);
    }

    #[test]
    fn touched_tracking() {
        let mut e = HostEntry::new_on_host();
        assert!(!e.touched_by_multiple());
        e.mark_touched(GpuId(0));
        assert!(!e.touched_by_multiple());
        e.mark_touched(GpuId(0));
        assert!(!e.touched_by_multiple());
        e.mark_touched(GpuId(3));
        assert!(e.touched_by_multiple());
    }

    #[test]
    fn host_table_register_and_lookup() {
        let mut ht = HostPageTable::new();
        ht.register(Vpn(1), HostEntry::new_on_host()).unwrap();
        ht.register(Vpn(2), HostEntry::new_at(DeviceId::Gpu(GpuId(2))))
            .unwrap();
        assert_eq!(ht.len(), 2);
        assert_eq!(ht.get(Vpn(2)).unwrap().owner, DeviceId::Gpu(GpuId(2)));
        ht.get_mut(Vpn(1)).unwrap().policy = PolicyBits::Duplication;
        assert_eq!(ht.get(Vpn(1)).unwrap().policy, PolicyBits::Duplication);
        assert!(ht.unregister(Vpn(1)).is_some());
        assert!(ht.get(Vpn(1)).is_none());
        assert!(!ht.is_empty());
    }

    #[test]
    fn host_table_reregister_after_unregister() {
        let mut ht = HostPageTable::new();
        ht.register(Vpn(7), HostEntry::new_on_host()).unwrap();
        assert!(ht.unregister(Vpn(7)).is_some());
        // Freed slot is reused, and registration succeeds again.
        ht.register(Vpn(7), HostEntry::new_at(DeviceId::Gpu(GpuId(1))))
            .unwrap();
        assert_eq!(ht.len(), 1);
        assert_eq!(ht.vpns.len(), 1);
        assert_eq!(ht.get(Vpn(7)).unwrap().owner, DeviceId::Gpu(GpuId(1)));
    }

    #[test]
    fn device_byte_encoding_round_trips() {
        for dev in [
            DeviceId::Host,
            DeviceId::Gpu(GpuId(0)),
            DeviceId::Gpu(GpuId(31)),
        ] {
            assert_eq!(device_from_byte(device_to_byte(dev)), dev);
        }
    }

    #[test]
    fn tables_snapshot_deterministically_and_round_trip() {
        let mut ht = HostPageTable::new();
        let mut lt = LocalPageTable::new();
        // Insert in descending order; snapshots must still sort by VPN.
        for i in (0..40u64).rev() {
            let mut e = HostEntry::new_at(DeviceId::Gpu(GpuId((i % 4) as u8)));
            e.copy_mask = (i as u32) & 0b1111;
            e.policy = PolicyBits::Duplication;
            e.mark_touched(GpuId((i % 3) as u8));
            ht.register(Vpn(i), e).unwrap();
            lt.insert(
                Vpn(i),
                Pte {
                    location: DeviceId::Host,
                    writable: i % 2 == 0,
                    policy: PolicyBits::AccessCounter,
                },
            );
        }
        let mut w1 = ByteWriter::new();
        ht.snapshot(&mut w1);
        lt.snapshot(&mut w1);
        let buf = w1.into_vec();

        let mut ht2 = HostPageTable::new();
        let mut lt2 = LocalPageTable::new();
        let mut r = ByteReader::new("tables", &buf);
        ht2.restore(&mut r).unwrap();
        lt2.restore(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(ht2.len(), ht.len());
        assert_eq!(lt2.len(), lt.len());
        for i in 0..40u64 {
            assert_eq!(ht2.get(Vpn(i)), ht.get(Vpn(i)));
            assert_eq!(lt2.get(Vpn(i)), lt.get(Vpn(i)));
        }
        // Re-snapshot of the restored tables is bit-identical.
        let mut w2 = ByteWriter::new();
        ht2.snapshot(&mut w2);
        lt2.snapshot(&mut w2);
        assert_eq!(w2.into_vec(), buf);
    }

    #[test]
    fn snapshot_skips_tombstones() {
        let mut lt = LocalPageTable::new();
        let pte = Pte {
            location: DeviceId::Host,
            writable: true,
            policy: PolicyBits::OnTouch,
        };
        lt.insert(Vpn(1), pte);
        lt.insert(Vpn(2), pte);
        lt.invalidate(Vpn(1));
        let mut w = ByteWriter::new();
        lt.snapshot(&mut w);
        let buf = w.into_vec();
        let mut fresh = LocalPageTable::new();
        let mut r = ByteReader::new("local-table", &buf);
        fresh.restore(&mut r).unwrap();
        assert_eq!(fresh.len(), 1);
        assert!(fresh.get(Vpn(1)).is_none());
        assert_eq!(fresh.get(Vpn(2)), Some(&pte));
    }

    #[test]
    fn reserved_policy_bits_fail_restore() {
        let mut w = ByteWriter::new();
        w.u64(1); // one entry
        w.u64(7); // vpn
        w.u8(0xFF); // host
        w.u32(0);
        w.u32(0);
        w.u8(0b10); // reserved encoding
        w.u32(0);
        let buf = w.into_vec();
        let mut ht = HostPageTable::new();
        let mut r = ByteReader::new("host-table", &buf);
        assert!(ht.restore(&mut r).is_err());
    }

    #[test]
    fn double_register_is_a_typed_error() {
        let mut ht = HostPageTable::new();
        ht.register(Vpn(1), HostEntry::new_on_host()).unwrap();
        assert_eq!(
            ht.register(Vpn(1), HostEntry::new_on_host()),
            Err(TableError::DoubleRegistration { vpn: 1 })
        );
        assert_eq!(ht.len(), 1, "failed registration must not clobber");
    }
}
