//! GRIT: fine-grained per-page dynamic page placement (HPCA 2024),
//! reimplemented as the comparison baseline of Section VI-C.
//!
//! GRIT learns a management policy for every *page* (rather than OASIS's
//! objects). Per the OASIS paper's description, it comprises:
//!
//! * a **Fault-Aware Initiator** (FAI) — a page's policy is re-evaluated
//!   after it accumulates four faults;
//! * **Policy Decision Selection** (PDS) — picks the new policy from the
//!   page's observed sharers and read/write mix (the same decision rules
//!   OASIS uses, so the comparison isolates granularity);
//! * **Neighboring-Aware Prediction** (NAP) — when a page's policy is
//!   decided, the same policy is predicted for its spatially neighboring
//!   pages and applied on their first fault;
//! * a **PA-Cache** — a 352-byte on-chip cache over the 48-bit-per-page
//!   in-memory attribute store; a miss adds a memory access to the fault
//!   path.
//!
//! The implementation plugs into the same [`oasis_uvm::UvmDriver`] as
//! OASIS, via [`oasis_uvm::PolicyEngine`].

use std::collections::HashMap;

use oasis_engine::codec::{ByteReader, ByteWriter, CodecError, Restore, Snapshot};
use oasis_engine::Duration;
use oasis_mem::tlb::Tlb;
use oasis_mem::types::{AccessKind, DeviceId, Vpn};
use oasis_uvm::driver::MemState;
use oasis_uvm::fault::PageFault;
use oasis_uvm::policy::{Decision, PolicyEngine, Resolution};

/// A page's learned policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GritPolicy {
    /// Migrate on touch (the initial policy).
    #[default]
    OnTouch,
    /// Remote-map and let access counters migrate.
    AccessCounter,
    /// Read-duplicate.
    Duplication,
}

/// GRIT tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GritConfig {
    /// Faults per page before FAI re-evaluates its policy (the paper:
    /// "GRIT requires four faults to trigger a policy change for a single
    /// page").
    pub fault_trigger: u8,
    /// Pages ahead of a decided page that NAP predicts for.
    pub neighbor_window: u64,
    /// PA-Cache capacity in entries (352 B at 64 bits/entry → 44).
    pub pa_cache_entries: usize,
    /// Memory latency charged when the PA-Cache misses and the page's
    /// attributes are fetched from GPU memory.
    pub attribute_fetch: Duration,
}

impl Default for GritConfig {
    fn default() -> Self {
        GritConfig {
            fault_trigger: 4,
            neighbor_window: 4,
            pa_cache_entries: 44,
            attribute_fetch: Duration::from_ns(250),
        }
    }
}

/// Behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GritStats {
    /// Faults processed.
    pub faults: u64,
    /// FAI re-evaluations performed.
    pub evaluations: u64,
    /// Policy changes applied by PDS.
    pub policy_changes: u64,
    /// First-fault pages that used a NAP prediction.
    pub predictions_used: u64,
    /// PA-Cache hits.
    pub pa_hits: u64,
    /// PA-Cache misses (paid `attribute_fetch`).
    pub pa_misses: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PageMeta {
    readers: u16,
    writers: u16,
    faults: u8,
    policy: GritPolicy,
    predicted: Option<GritPolicy>,
    ever_faulted: bool,
}

/// The GRIT policy engine.
///
/// # Example
///
/// ```
/// use oasis_grit::{GritEngine, GritPolicy};
/// use oasis_mem::types::Vpn;
///
/// let engine = GritEngine::new();
/// // Pages start under on-touch until four faults trigger the FAI.
/// assert_eq!(engine.page_policy(Vpn(1)), GritPolicy::OnTouch);
/// ```
#[derive(Debug)]
pub struct GritEngine {
    config: GritConfig,
    pages: HashMap<Vpn, PageMeta>,
    pa_cache: Tlb,
    stats: GritStats,
}

impl GritEngine {
    /// Creates a GRIT engine with the paper's defaults.
    pub fn new() -> Self {
        Self::with_config(GritConfig::default())
    }

    /// Creates a GRIT engine with explicit parameters.
    pub fn with_config(config: GritConfig) -> Self {
        GritEngine {
            pa_cache: Tlb::new(config.pa_cache_entries, config.pa_cache_entries),
            config,
            pages: HashMap::new(),
            stats: GritStats::default(),
        }
    }

    /// Disables Neighboring-Aware Prediction (ablation).
    pub fn without_nap(mut self) -> Self {
        self.config.neighbor_window = 0;
        self
    }

    /// Behaviour counters.
    pub fn stats(&self) -> GritStats {
        self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> GritConfig {
        self.config
    }

    /// The policy currently learned for `vpn` (tests/inspection).
    pub fn page_policy(&self, vpn: Vpn) -> GritPolicy {
        self.pages.get(&vpn).map(|m| m.policy).unwrap_or_default()
    }

    /// In-memory metadata footprint per the paper's accounting
    /// (48 bits/page of faulted pages).
    pub fn metadata_bits(&self) -> u64 {
        self.pages.values().filter(|m| m.ever_faulted).count() as u64 * 48
    }

    /// Policy Decision Selection: sharers and read/write mix to policy.
    fn pds(meta: &PageMeta) -> GritPolicy {
        let sharers = (meta.readers | meta.writers).count_ones();
        if sharers <= 1 {
            GritPolicy::OnTouch
        } else if meta.writers == 0 {
            GritPolicy::Duplication
        } else {
            GritPolicy::AccessCounter
        }
    }
}

impl Default for GritEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyEngine for GritEngine {
    fn name(&self) -> &str {
        "grit"
    }

    fn resolve(&mut self, fault: &PageFault, state: &MemState) -> Decision {
        self.stats.faults += 1;
        // PA-Cache: the page's attribute word must be on chip to proceed.
        let metadata_latency = if self.pa_cache.access(fault.vpn) {
            self.stats.pa_hits += 1;
            Duration::ZERO
        } else {
            self.stats.pa_misses += 1;
            self.pa_cache.fill(fault.vpn);
            self.config.attribute_fetch
        };

        let meta = self.pages.entry(fault.vpn).or_default();
        match fault.kind {
            AccessKind::Read => meta.readers |= 1 << fault.gpu.0,
            AccessKind::Write => meta.writers |= 1 << fault.gpu.0,
        }
        if !meta.ever_faulted {
            meta.ever_faulted = true;
            if let Some(p) = meta.predicted.take() {
                meta.policy = p;
                self.stats.predictions_used += 1;
            }
        }
        meta.faults += 1;

        let mut decided: Option<GritPolicy> = None;
        if meta.faults >= self.config.fault_trigger {
            meta.faults = 0;
            let new_policy = Self::pds(meta);
            self.stats.evaluations += 1;
            if new_policy != meta.policy {
                self.stats.policy_changes += 1;
            }
            meta.policy = new_policy;
            // Start a fresh observation window so the page can adapt to
            // later phases.
            meta.readers = 0;
            meta.writers = 0;
            decided = Some(new_policy);
        }
        let policy = meta.policy;

        // NAP: propagate the freshly decided policy to spatial neighbors.
        if let Some(p) = decided {
            for i in 1..=self.config.neighbor_window {
                let neighbor = Vpn(fault.vpn.0 + i);
                let m = self.pages.entry(neighbor).or_default();
                if !m.ever_faulted {
                    m.predicted = Some(p);
                }
            }
        }

        let owner = state
            .host_table
            .get(fault.vpn)
            .map(|e| e.owner)
            .unwrap_or(DeviceId::Host);
        let resolution = match policy {
            GritPolicy::OnTouch => Resolution::Migrate,
            GritPolicy::AccessCounter => {
                if owner == DeviceId::Host || owner == DeviceId::Gpu(fault.gpu) {
                    Resolution::Migrate
                } else {
                    Resolution::RemoteMap
                }
            }
            GritPolicy::Duplication => Resolution::Duplicate,
        };
        Decision {
            resolution,
            metadata_latency,
        }
    }

    /// Serializes the per-page attribute store, the PA-Cache, and the
    /// behaviour counters. Configuration comes from construction.
    fn snapshot_state(&self, w: &mut ByteWriter) {
        let mut pages: Vec<(Vpn, PageMeta)> = self.pages.iter().map(|(k, v)| (*k, *v)).collect();
        pages.sort_unstable_by_key(|(v, _)| v.0);
        w.u64(pages.len() as u64);
        for (vpn, m) in pages {
            w.u64(vpn.0);
            w.u16(m.readers);
            w.u16(m.writers);
            w.u8(m.faults);
            w.u8(policy_to_byte(m.policy));
            match m.predicted {
                None => w.u8(0xFF),
                Some(p) => w.u8(policy_to_byte(p)),
            }
            w.bool(m.ever_faulted);
        }
        self.pa_cache.snapshot(w);
        for v in [
            self.stats.faults,
            self.stats.evaluations,
            self.stats.policy_changes,
            self.stats.predictions_used,
            self.stats.pa_hits,
            self.stats.pa_misses,
        ] {
            w.u64(v);
        }
    }

    fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let n = r.usize()?;
        self.pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let vpn = Vpn(r.u64()?);
            let readers = r.u16()?;
            let writers = r.u16()?;
            let faults = r.u8()?;
            let policy_byte = r.u8()?;
            let predicted_byte = r.u8()?;
            let meta = PageMeta {
                readers,
                writers,
                faults,
                policy: policy_from_byte(r, policy_byte)?,
                predicted: match predicted_byte {
                    0xFF => None,
                    b => Some(policy_from_byte(r, b)?),
                },
                ever_faulted: r.bool()?,
            };
            if self.pages.insert(vpn, meta).is_some() {
                return Err(r.malformed(format!("duplicate page metadata for vpn {}", vpn.0)));
            }
        }
        self.pa_cache.restore(r)?;
        for field in [
            &mut self.stats.faults,
            &mut self.stats.evaluations,
            &mut self.stats.policy_changes,
            &mut self.stats.predictions_used,
            &mut self.stats.pa_hits,
            &mut self.stats.pa_misses,
        ] {
            *field = r.u64()?;
        }
        Ok(())
    }
}

fn policy_to_byte(p: GritPolicy) -> u8 {
    match p {
        GritPolicy::OnTouch => 0,
        GritPolicy::AccessCounter => 1,
        GritPolicy::Duplication => 2,
    }
}

fn policy_from_byte(r: &ByteReader<'_>, b: u8) -> Result<GritPolicy, CodecError> {
    match b {
        0 => Ok(GritPolicy::OnTouch),
        1 => Ok(GritPolicy::AccessCounter),
        2 => Ok(GritPolicy::Duplication),
        _ => Err(r.malformed(format!("invalid GRIT policy byte {b:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_mem::page::HostEntry;
    use oasis_mem::types::{GpuId, PageSize, Va};

    fn state_with_owner(vpn: Vpn, owner: DeviceId) -> MemState {
        let mut s = MemState::new(4, PageSize::Small4K, None);
        s.host_table
            .register(vpn, HostEntry::new_at(owner))
            .expect("fresh page");
        s
    }

    fn far(gpu: u8, vpn: u64, kind: AccessKind) -> PageFault {
        PageFault::far(GpuId(gpu), Va(vpn << 12), Vpn(vpn), kind)
    }

    #[test]
    fn starts_on_touch() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Host);
        let d = g.resolve(&far(0, 1, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::OnTouch);
    }

    #[test]
    fn four_read_shared_faults_switch_to_duplication() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Read), &s);
        }
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::Duplication);
        assert_eq!(g.stats().evaluations, 1);
        assert_eq!(g.stats().policy_changes, 1);
        // The 5th fault applies duplication.
        let d = g.resolve(&far(1, 1, AccessKind::Read), &s);
        assert_eq!(d.resolution, Resolution::Duplicate);
    }

    #[test]
    fn write_shared_faults_switch_to_access_counter() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Write), &s);
        }
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::AccessCounter);
        let d = g.resolve(&far(0, 1, AccessKind::Write), &s);
        assert_eq!(d.resolution, Resolution::RemoteMap);
    }

    #[test]
    fn single_sharer_stays_on_touch() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(0)));
        for _ in 0..8 {
            g.resolve(&far(0, 1, AccessKind::Write), &s);
        }
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::OnTouch);
        assert_eq!(g.stats().policy_changes, 0);
    }

    #[test]
    fn nap_predicts_neighbors() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Read), &s);
        }
        // Page 2 was predicted; its very first fault uses duplication.
        let s2 = state_with_owner(Vpn(2), DeviceId::Gpu(GpuId(3)));
        let d = g.resolve(&far(0, 2, AccessKind::Read), &s2);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(g.stats().predictions_used, 1);
    }

    #[test]
    fn without_nap_neighbors_start_on_touch() {
        let mut g = GritEngine::new().without_nap();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Read), &s);
        }
        let s2 = state_with_owner(Vpn(2), DeviceId::Gpu(GpuId(3)));
        let d = g.resolve(&far(0, 2, AccessKind::Read), &s2);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(g.stats().predictions_used, 0);
    }

    #[test]
    fn pa_cache_charges_only_on_miss() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Host);
        let d1 = g.resolve(&far(0, 1, AccessKind::Read), &s);
        assert_eq!(d1.metadata_latency, Duration::from_ns(250));
        let d2 = g.resolve(&far(1, 1, AccessKind::Read), &s);
        assert_eq!(d2.metadata_latency, Duration::ZERO);
        assert_eq!(g.stats().pa_misses, 1);
        assert_eq!(g.stats().pa_hits, 1);
    }

    #[test]
    fn pa_cache_capacity_evicts() {
        let mut g = GritEngine::new();
        let mut s = MemState::new(4, PageSize::Small4K, None);
        for i in 0..100 {
            s.host_table
                .register(Vpn(i), HostEntry::new_on_host())
                .expect("fresh page");
        }
        for i in 0..50 {
            g.resolve(&far(0, i, AccessKind::Read), &s);
        }
        // Revisiting page 0 misses again (44-entry cache, 50 pages).
        let d = g.resolve(&far(1, 0, AccessKind::Read), &s);
        assert_eq!(d.metadata_latency, Duration::from_ns(250));
    }

    #[test]
    fn observation_window_resets_allow_adaptation() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        // Phase 1: read-shared -> duplication.
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Read), &s);
        }
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::Duplication);
        // Phase 2: write-shared -> access-counter after 4 more faults.
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Write), &s);
        }
        assert_eq!(g.page_policy(Vpn(1)), GritPolicy::AccessCounter);
    }

    #[test]
    fn metadata_accounting_counts_faulted_pages() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Host);
        g.resolve(&far(0, 1, AccessKind::Read), &s);
        assert_eq!(g.metadata_bits(), 48);
        assert_eq!(g.name(), "grit");
    }

    #[test]
    fn snapshot_round_trips_page_attributes_and_pa_cache() {
        let mut g = GritEngine::new();
        let s = state_with_owner(Vpn(1), DeviceId::Gpu(GpuId(3)));
        // Learn duplication on page 1 (predicting neighbors 2..=5) and
        // leave page 7 mid-observation.
        for gpu in 0..4 {
            g.resolve(&far(gpu, 1, AccessKind::Read), &s);
        }
        let s7 = state_with_owner(Vpn(7), DeviceId::Gpu(GpuId(3)));
        g.resolve(&far(0, 7, AccessKind::Write), &s7);
        let mut w = ByteWriter::new();
        g.snapshot_state(&mut w);
        let buf = w.into_vec();

        let mut fresh = GritEngine::new();
        let mut r = ByteReader::new("policy", &buf);
        fresh.restore_state(&mut r).expect("valid grit state");
        assert!(r.is_empty(), "payload fully consumed");
        assert_eq!(fresh.stats(), g.stats());
        assert_eq!(fresh.page_policy(Vpn(1)), GritPolicy::Duplication);
        // Restored predictions still fire: page 2's first fault duplicates.
        let s2 = state_with_owner(Vpn(2), DeviceId::Gpu(GpuId(3)));
        let a = g.resolve(&far(0, 2, AccessKind::Read), &s2);
        let b = fresh.resolve(&far(0, 2, AccessKind::Read), &s2);
        assert_eq!(a, b);
        assert_eq!(b.resolution, Resolution::Duplicate);
        // PA-Cache warmth carried over: page 1 is a hit in both.
        let a = g.resolve(&far(1, 1, AccessKind::Read), &s);
        let b = fresh.resolve(&far(1, 1, AccessKind::Read), &s);
        assert_eq!(a.metadata_latency, b.metadata_latency);
    }

    #[test]
    fn restore_rejects_invalid_policy_byte() {
        let g = GritEngine::new();
        let mut w = ByteWriter::new();
        g.snapshot_state(&mut w);
        let mut buf = w.into_vec();
        // One page entry with a bogus policy byte.
        let mut w = ByteWriter::new();
        w.u64(1); // page count
        w.u64(9); // vpn
        w.u16(0);
        w.u16(0);
        w.u8(0);
        w.u8(7); // invalid policy
        w.u8(0xFF);
        w.bool(false);
        let mut patched = w.into_vec();
        patched.extend_from_slice(&buf.split_off(8)); // keep pa_cache + stats
        let mut fresh = GritEngine::new();
        let mut r = ByteReader::new("policy", &patched);
        let err = fresh.restore_state(&mut r).expect_err("bogus policy byte");
        assert!(err.to_string().contains("invalid GRIT policy byte"));
    }
}
