//! Deterministic scenario generation.
//!
//! A [`Scenario`] is the fuzzer's unit of work: a compact, shrinkable
//! description of one simulation setup — application, platform shape,
//! capacity pressure, and hardware-fault schedule — from which the concrete
//! [`SystemConfig`] and [`Trace`](oasis_workloads::Trace) are rebuilt on
//! demand. Every field is derived from a single seed through the in-tree
//! [`SimRng`], so `generate(seed)` is a pure function: the same seed always
//! yields the same scenario, on any host.

use oasis_engine::{ErrorPolicy, SimRng};
use oasis_interconnect::FaultPlan;
use oasis_mem::types::PageSize;
use oasis_mgpu::{GuardMode, Placement, Policy, SystemConfig};
use oasis_workloads::{generate as generate_trace, App, Trace, WorkloadParams};

/// Applications the generator draws from: the cheap, structurally diverse
/// subset (random, adjacent, and scatter-gather patterns; single- and
/// multi-phase traces). The DNN training apps are excluded — they allocate
/// hundreds of objects and would blow the CI time budget without adding
/// new mechanics.
pub const FUZZ_APPS: [App; 6] = [App::Bfs, App::C2d, App::Fft, App::Mm, App::Mt, App::St];

/// The four policies the differential oracle compares.
pub fn oracle_policies() -> [Policy; 4] {
    [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ]
}

/// One generated simulation setup. Small on purpose: each field is an
/// independently shrinkable knob, and the whole struct round-trips through
/// the JSON corpus format (see [`crate::corpus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The seed this scenario was generated from. Also drives every
    /// oracle-internal choice (replay policy, kill epoch), so a scenario
    /// re-checked from its corpus file behaves identically.
    pub seed: u64,
    /// Application whose trace generator is used.
    pub app: App,
    /// GPUs in the simulated system.
    pub gpu_count: usize,
    /// Managed footprint in MB.
    pub footprint_mb: u64,
    /// Seed for the trace generator's own RNG.
    pub workload_seed: u64,
    /// Kernel count: the trace is truncated to its first `max_phases`
    /// phases (at least one survives).
    pub max_phases: usize,
    /// Use 2 MiB pages instead of 4 KiB.
    pub large_pages: bool,
    /// Stripe initial placement across GPUs instead of starting on host.
    pub striped: bool,
    /// Concurrent outstanding accesses per GPU.
    pub lanes_per_gpu: usize,
    /// Access-counter migration threshold.
    pub counter_threshold: u32,
    /// Per-GPU frame capacity (`None` = enough for the workload). `Some`
    /// creates eviction pressure, the oversubscription code path.
    pub capacity_pages: Option<u64>,
    /// Scheduled hardware faults (always valid for `gpu_count`).
    pub fault_plan: FaultPlan,
}

impl Scenario {
    /// Generates the scenario for `seed`. Pure: no global state, no clock.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5CEA_A710_F077_A5ED_u64);
        Self::from_rng(seed, &mut rng)
    }

    fn from_rng(seed: u64, rng: &mut SimRng) -> Scenario {
        let app = *rng.choose(&FUZZ_APPS).expect("non-empty app set");
        let gpu_count = rng.gen_range(1..5) as usize;
        let footprint_mb = rng.gen_range(2..5);
        let workload_seed = rng.next_u64();
        let max_phases = rng.gen_range(1..4) as usize;
        let large_pages = rng.gen_bool_ratio(1, 4);
        let striped = rng.gen_bool_ratio(1, 3);
        let lanes_per_gpu = *rng.choose(&[1usize, 4, 16]).expect("non-empty");
        let counter_threshold = *rng.choose(&[8u32, 64, 256]).expect("non-empty");
        // Capacity pressure in half the 4 KiB-page scenarios. A 2 MB
        // footprint is ~512 small pages; capping a GPU at 48..=256 frames
        // forces the eviction path without starving the fault handler.
        // 2 MiB-page runs are 1-2 pages total, so a cap is meaningless.
        let capacity_pages =
            (!large_pages && rng.gen_bool_ratio(1, 2)).then(|| rng.gen_range(48..257));
        let fault_plan = random_fault_plan(rng, gpu_count, max_phases);
        Scenario {
            seed,
            app,
            gpu_count,
            footprint_mb,
            workload_seed,
            max_phases,
            large_pages,
            striped,
            lanes_per_gpu,
            counter_threshold,
            capacity_pages,
            fault_plan,
        }
    }

    /// Builds the concrete trace: the app's generator at this scenario's
    /// footprint and seed, truncated to `max_phases` kernels.
    pub fn trace(&self) -> Trace {
        let params = WorkloadParams {
            gpu_count: self.gpu_count,
            footprint_mb: self.footprint_mb,
            seed: self.workload_seed,
        };
        let mut trace = generate_trace(self.app, &params);
        trace.retain_phases(self.max_phases);
        trace
    }

    /// Builds the concrete platform configuration for `policy` runs. The
    /// oracle's standing choices — `RecordAndContinue` (panics and aborts
    /// are findings, recorded errors are data) and the epoch guard (the
    /// invariant checker IS one of the oracles) — live here so every
    /// checker sees the same platform.
    pub fn config(&self) -> SystemConfig {
        SystemConfig {
            gpu_count: self.gpu_count,
            page_size: if self.large_pages {
                PageSize::Large2M
            } else {
                PageSize::Small4K
            },
            lanes_per_gpu: self.lanes_per_gpu,
            counter_threshold: self.counter_threshold,
            gpu_capacity_pages: self.capacity_pages,
            placement: if self.striped {
                Placement::Striped
            } else {
                Placement::Host
            },
            error_policy: ErrorPolicy::RecordAndContinue,
            guard: GuardMode::Epoch,
            fault_plan: self.fault_plan.clone(),
            ..SystemConfig::default()
        }
    }

    /// A compact one-line rendering for logs and failure messages.
    pub fn summary(&self) -> String {
        format!(
            "seed={:#018x} app={} gpus={} footprint={}MB phases={} pages={} \
             placement={} lanes={} threshold={} capacity={} faults='{}'",
            self.seed,
            self.app.abbr(),
            self.gpu_count,
            self.footprint_mb,
            self.max_phases,
            if self.large_pages { "2M" } else { "4K" },
            if self.striped { "striped" } else { "host" },
            self.lanes_per_gpu,
            self.counter_threshold,
            self.capacity_pages
                .map_or_else(|| "none".to_string(), |c| c.to_string()),
            self.fault_plan.to_spec(),
        )
    }
}

/// Draws a small fault plan valid for a `gpu_count`-GPU run of
/// `max_phases` epochs: 0-2 events, link events only when two endpoints
/// exist, flaky windows kept disjoint by construction (one per plan).
fn random_fault_plan(rng: &mut SimRng, gpu_count: usize, max_phases: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: rng.next_u64(),
        ..FaultPlan::default()
    };
    let events = rng.gen_range(0..3);
    let epochs = max_phases as u64;
    for _ in 0..events {
        match rng.gen_range(0..3) {
            0 if gpu_count >= 2 => {
                let (a, b) = random_pair(rng, gpu_count);
                plan.link_down.push(oasis_interconnect::LinkDown {
                    a,
                    b,
                    epoch: rng.gen_range(0..epochs.max(1)),
                });
            }
            1 if gpu_count >= 2 && plan.flaky.is_empty() => {
                let (a, b) = random_pair(rng, gpu_count);
                let from = rng.gen_range(0..epochs.max(1));
                plan.flaky.push(oasis_interconnect::FlakyWindow {
                    a,
                    b,
                    from_epoch: from,
                    to_epoch: from + rng.gen_range(1..4),
                    num: 1,
                    den: rng.gen_range(2..9),
                });
            }
            2 => {
                plan.ecc.push(oasis_interconnect::EccEvent {
                    gpu: rng.gen_below(gpu_count) as u8,
                    epoch: rng.gen_range(0..epochs.max(1)),
                    frames: rng.gen_range(1..3) as u32,
                });
            }
            _ => {} // link event drawn for a 1-GPU system: skip.
        }
    }
    debug_assert!(plan.validate_for(gpu_count).is_ok());
    plan
}

fn random_pair(rng: &mut SimRng, gpu_count: usize) -> (u8, u8) {
    let a = rng.gen_below(gpu_count) as u8;
    let mut b = rng.gen_below(gpu_count) as u8;
    while b == a {
        b = rng.gen_below(gpu_count) as u8;
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
    }

    #[test]
    fn generated_scenarios_are_always_valid() {
        for seed in 0..200u64 {
            let s = Scenario::generate(seed);
            assert!((1..=4).contains(&s.gpu_count), "{}", s.summary());
            assert!((2..=4).contains(&s.footprint_mb), "{}", s.summary());
            assert!(s.max_phases >= 1, "{}", s.summary());
            assert!(
                s.fault_plan.validate_for(s.gpu_count).is_ok(),
                "{}",
                s.summary()
            );
            // The rendered plan re-parses: corpus files will round-trip.
            let respec = FaultPlan::parse(&s.fault_plan.to_spec()).expect("round-trip");
            assert_eq!(respec, s.fault_plan, "{}", s.summary());
            // Trace and config build without panicking and agree on shape.
            let trace = s.trace();
            assert!(!trace.phases.is_empty());
            assert!(trace.phases.len() <= s.max_phases);
            assert_eq!(s.config().gpu_count, s.gpu_count);
        }
    }

    #[test]
    fn seeds_explore_the_space() {
        let mut gpu_counts = std::collections::BTreeSet::new();
        let mut apps = std::collections::BTreeSet::new();
        let mut any_capacity = false;
        let mut any_fault = false;
        for seed in 0..100u64 {
            let s = Scenario::generate(seed);
            gpu_counts.insert(s.gpu_count);
            apps.insert(s.app);
            any_capacity |= s.capacity_pages.is_some();
            any_fault |= !s.fault_plan.is_empty();
        }
        assert!(gpu_counts.len() >= 3, "gpu counts stuck: {gpu_counts:?}");
        assert!(apps.len() >= 4, "apps stuck: {apps:?}");
        assert!(any_capacity, "capacity pressure never generated");
        assert!(any_fault, "fault plans never generated");
    }
}
