//! JSON repro corpus: serialization, parsing, and file management.
//!
//! Every shrunk repro is written as one flat JSON object under
//! `tests/corpus/` so the regression suite replays it forever after. The
//! format is deliberately minimal — scalar fields only, the fault plan as
//! its spec-grammar string — and the workspace is dependency-free, so both
//! the writer and the (tiny) parser are hand-rolled here.
//!
//! ```json
//! {
//!   "schema": "oasis-fuzz-scenario-v1",
//!   "oracle": "abort",
//!   "seed": 42,
//!   "app": "MT",
//!   "gpu_count": 2,
//!   "footprint_mb": 2,
//!   "workload_seed": 7,
//!   "max_phases": 1,
//!   "large_pages": false,
//!   "striped": false,
//!   "lanes_per_gpu": 4,
//!   "counter_threshold": 256,
//!   "capacity_pages": 64,
//!   "fault_plan": "seed:0"
//! }
//! ```

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use oasis_interconnect::FaultPlan;
use oasis_workloads::{App, ALL_APPS};

use crate::oracle::OracleKind;
use crate::scenario::Scenario;

/// Schema tag stamped into (and required from) every corpus file.
pub const SCHEMA: &str = "oasis-fuzz-scenario-v1";

/// Serializes a scenario (plus the oracle kind it violated, if any) into
/// the corpus JSON format.
pub fn to_json(scenario: &Scenario, oracle: Option<OracleKind>) -> String {
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"oracle\": \"{}\",\n  \"seed\": {},\n  \
         \"app\": \"{}\",\n  \"gpu_count\": {},\n  \"footprint_mb\": {},\n  \
         \"workload_seed\": {},\n  \"max_phases\": {},\n  \"large_pages\": {},\n  \
         \"striped\": {},\n  \"lanes_per_gpu\": {},\n  \"counter_threshold\": {},\n  \
         \"capacity_pages\": {},\n  \"fault_plan\": \"{}\"\n}}\n",
        oracle.map_or("none", OracleKind::as_str),
        scenario.seed,
        scenario.app.abbr(),
        scenario.gpu_count,
        scenario.footprint_mb,
        scenario.workload_seed,
        scenario.max_phases,
        scenario.large_pages,
        scenario.striped,
        scenario.lanes_per_gpu,
        scenario.counter_threshold,
        scenario
            .capacity_pages
            .map_or_else(|| "null".to_string(), |c| c.to_string()),
        scenario.fault_plan.to_spec(),
    )
}

/// Serializes a scenario into its *canonical wire line*: the same flat
/// object as [`to_json`] collapsed onto a single line, oracle always
/// `"none"`, no trailing newline. This is the newline-JSON job payload of
/// the sweep-server protocol and the preimage of [`scenario_digest`] —
/// the byte sequence is a compatibility contract, so any change here
/// invalidates every content-addressed result cache in the wild.
pub fn to_json_line(scenario: &Scenario) -> String {
    format!(
        "{{\"schema\": \"{SCHEMA}\", \"oracle\": \"none\", \"seed\": {}, \"app\": \"{}\", \
         \"gpu_count\": {}, \"footprint_mb\": {}, \"workload_seed\": {}, \"max_phases\": {}, \
         \"large_pages\": {}, \"striped\": {}, \"lanes_per_gpu\": {}, \"counter_threshold\": {}, \
         \"capacity_pages\": {}, \"fault_plan\": \"{}\"}}",
        scenario.seed,
        scenario.app.abbr(),
        scenario.gpu_count,
        scenario.footprint_mb,
        scenario.workload_seed,
        scenario.max_phases,
        scenario.large_pages,
        scenario.striped,
        scenario.lanes_per_gpu,
        scenario.counter_threshold,
        scenario
            .capacity_pages
            .map_or_else(|| "null".to_string(), |c| c.to_string()),
        scenario.fault_plan.to_spec(),
    )
}

/// The scenario's content address: FNV-1a 64 over the canonical wire line
/// ([`to_json_line`]). Two submissions of the same scenario — whatever
/// whitespace or field order the submitter used — hash identically, so
/// this is the sweep server's result-cache key and the digest printed in
/// every protocol response.
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    oasis_engine::fnv1a(to_json_line(scenario).as_bytes())
}

/// Parses a corpus file produced by [`to_json`].
///
/// # Errors
///
/// Returns a message naming the missing or malformed field. The parser
/// accepts exactly the flat-object subset of JSON [`to_json`] emits
/// (string, integer, boolean, and null values; no nesting).
pub fn from_json(text: &str) -> Result<(Scenario, Option<OracleKind>), String> {
    let fields = parse_flat_object(text)?;
    let get = |key: &str| {
        fields
            .get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    };
    let str_field = |key: &str| -> Result<String, String> {
        match get(key)? {
            JsonValue::Str(s) => Ok(s.clone()),
            v => Err(format!("field '{key}' should be a string, got {v:?}")),
        }
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        match get(key)? {
            JsonValue::Num(n) => Ok(*n),
            v => Err(format!("field '{key}' should be a number, got {v:?}")),
        }
    };
    let bool_field = |key: &str| -> Result<bool, String> {
        match get(key)? {
            JsonValue::Bool(b) => Ok(*b),
            v => Err(format!("field '{key}' should be a boolean, got {v:?}")),
        }
    };

    let schema = str_field("schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SCHEMA}')"
        ));
    }
    let oracle = match str_field("oracle")?.as_str() {
        "none" => None,
        s => Some(OracleKind::parse(s).ok_or_else(|| format!("unknown oracle kind '{s}'"))?),
    };
    let abbr = str_field("app")?;
    let app = app_from_abbr(&abbr).ok_or_else(|| format!("unknown app '{abbr}'"))?;
    let capacity_pages = match get("capacity_pages")? {
        JsonValue::Null => None,
        JsonValue::Num(n) => Some(*n),
        v => {
            return Err(format!(
                "field 'capacity_pages' should be a number or null, got {v:?}"
            ))
        }
    };
    let plan_spec = str_field("fault_plan")?;
    let fault_plan =
        FaultPlan::parse(&plan_spec).map_err(|e| format!("field 'fault_plan': {e}"))?;
    let gpu_count = u64_field("gpu_count")? as usize;
    if gpu_count == 0 {
        return Err("field 'gpu_count' must be positive".to_string());
    }
    fault_plan
        .validate_for(gpu_count)
        .map_err(|e| format!("field 'fault_plan': {e}"))?;
    let scenario = Scenario {
        seed: u64_field("seed")?,
        app,
        gpu_count,
        footprint_mb: u64_field("footprint_mb")?.max(1),
        workload_seed: u64_field("workload_seed")?,
        max_phases: (u64_field("max_phases")? as usize).max(1),
        large_pages: bool_field("large_pages")?,
        striped: bool_field("striped")?,
        lanes_per_gpu: (u64_field("lanes_per_gpu")? as usize).max(1),
        counter_threshold: u64_field("counter_threshold")?.min(u64::from(u32::MAX)) as u32,
        capacity_pages,
        fault_plan,
    };
    Ok((scenario, oracle))
}

/// Maps a Table II abbreviation back to its [`App`].
pub fn app_from_abbr(abbr: &str) -> Option<App> {
    ALL_APPS.into_iter().find(|a| a.abbr() == abbr)
}

/// Writes the repro for a shrunk violation into `dir`, creating it if
/// needed. The filename encodes the seed and oracle kind, so distinct
/// failures never collide and replays are greppable in CI logs.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or file cannot be
/// written.
pub fn write_repro(
    dir: &Path,
    scenario: &Scenario,
    oracle: Option<OracleKind>,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = format!(
        "repro-{:016x}-{}.json",
        scenario.seed,
        oracle.map_or("none", OracleKind::as_str)
    );
    let path = dir.join(name);
    oasis_engine::failpoint::on_io("corpus.write", &path)?;
    // Atomic: a kill mid-write must never leave a torn repro for the
    // regression replay to choke on.
    oasis_engine::fsio::atomic_write(&path, to_json(scenario, oracle).as_bytes())?;
    Ok(path)
}

/// One successfully parsed corpus repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The file the repro was loaded from.
    pub path: PathBuf,
    /// The parsed scenario.
    pub scenario: Scenario,
    /// The oracle kind recorded with the repro, if any.
    pub oracle: Option<OracleKind>,
}

/// A directory entry `load_dir` skipped, with the typed reason — a
/// warning for the report, not an abort for the replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedFile {
    /// The offending path.
    pub path: PathBuf,
    /// Why it was skipped (wrong extension, unreadable, parse failure).
    pub reason: String,
}

/// The result of loading a corpus directory: the repros that parsed plus
/// the files that didn't. One garbage file in the directory must never
/// cost the replay of five hundred good repros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    /// Parsed repros, sorted by filename for deterministic replay order.
    pub entries: Vec<CorpusEntry>,
    /// Files skipped with their reasons, sorted by filename.
    pub skipped: Vec<SkippedFile>,
}

impl Corpus {
    /// Whether no repro parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of parsed repros.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Loads every corpus repro in `dir`, sorted by filename for deterministic
/// replay order. A missing directory is an empty corpus. Non-`.json`
/// files and malformed repro files are *skipped with a typed warning* in
/// [`Corpus::skipped`] rather than aborting the load (subdirectories are
/// ignored silently).
///
/// # Errors
///
/// Only directory-level failures (unreadable directory) error out;
/// per-file problems land in [`Corpus::skipped`].
pub fn load_dir(dir: &Path) -> Result<Corpus, String> {
    let mut corpus = Corpus::default();
    let mut paths = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
                if path.is_dir() {
                    continue;
                }
                if path.extension().is_some_and(|e| e == "json") {
                    paths.push(path);
                } else {
                    corpus.skipped.push(SkippedFile {
                        path,
                        reason: "not a .json repro file".to_string(),
                    });
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(corpus),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    }
    paths.sort();
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                corpus.skipped.push(SkippedFile {
                    path,
                    reason: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        match from_json(&text) {
            Ok((scenario, oracle)) => corpus.entries.push(CorpusEntry {
                path,
                scenario,
                oracle,
            }),
            Err(e) => corpus.skipped.push(SkippedFile {
                path,
                reason: format!("malformed repro: {e}"),
            }),
        }
    }
    corpus.skipped.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(corpus)
}

/// The scalar values the corpus format uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A double-quoted string (no escape sequences).
    Str(String),
    /// A non-negative integer.
    Num(u64),
    /// `true` or `false`.
    Bool(bool),
    /// The `null` literal.
    Null,
}

/// Parses one flat JSON object of scalar fields. Not a general JSON
/// parser: nesting and arrays are rejected, which doubles as corpus-file
/// validation. Public because the sweep-server wire protocol reuses this
/// exact subset for its request and response lines — one parser, one
/// grammar.
///
/// # Errors
///
/// Returns a message naming the first malformed construct.
pub fn parse_flat_object(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = text.chars().peekable();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{' at start of corpus file".to_string());
    }
    let mut fields = BTreeMap::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected field name or '}}', got {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after field '{key}'"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    digits.push(chars.next().expect("peeked"));
                }
                JsonValue::Num(
                    digits
                        .parse()
                        .map_err(|_| format!("bad number '{digits}' in field '{key}'"))?,
                )
            }
            Some('t' | 'f' | 'n') => {
                let mut word = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.push(chars.next().expect("peeked"));
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    "null" => JsonValue::Null,
                    w => return Err(format!("bad literal '{w}' in field '{key}'")),
                }
            }
            other => return Err(format!("unsupported value {other:?} in field '{key}'")),
        };
        if fields.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate field '{key}'"));
        }
        skip_ws(&mut chars);
        match chars.peek() {
            Some(',') => {
                chars.next();
            }
            Some('}') => {}
            other => return Err(format!("expected ',' or '}}' after field, got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after corpus object".to_string());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".to_string());
    }
    let mut out = String::new();
    for c in chars.by_ref() {
        match c {
            '"' => return Ok(out),
            // The writer never emits escapes (fault-plan specs and app
            // abbreviations are plain ASCII); reject rather than guess.
            '\\' => return Err("escape sequences are not supported".to_string()),
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_round_trip_through_json() {
        for seed in 0..100u64 {
            let s = Scenario::generate(seed);
            for oracle in [None, Some(OracleKind::Abort), Some(OracleKind::Panic)] {
                let text = to_json(&s, oracle);
                let (back, kind) = from_json(&text)
                    .unwrap_or_else(|e| panic!("seed {seed}: round-trip failed: {e}\n{text}"));
                assert_eq!(back, s, "seed {seed}");
                assert_eq!(kind, oracle, "seed {seed}");
            }
        }
    }

    #[test]
    fn wire_line_round_trips_and_digest_is_stable() {
        for seed in 0..50u64 {
            let s = Scenario::generate(seed);
            let line = to_json_line(&s);
            assert!(!line.contains('\n'), "wire line must be one line");
            let (back, oracle) = from_json(&line)
                .unwrap_or_else(|e| panic!("seed {seed}: wire line failed to parse: {e}\n{line}"));
            assert_eq!(back, s, "seed {seed}");
            assert_eq!(oracle, None, "wire lines carry no oracle verdict");
            // The digest is a pure function of the scenario: pretty and
            // wire forms of the same scenario share it.
            assert_eq!(scenario_digest(&s), scenario_digest(&back));
        }
        // Distinct scenarios get distinct cache keys (for these seeds).
        assert_ne!(
            scenario_digest(&Scenario::generate(1)),
            scenario_digest(&Scenario::generate(2))
        );
    }

    #[test]
    fn parser_rejects_malformed_corpus_files() {
        for (bad, why) in [
            ("", "empty"),
            ("{", "unterminated"),
            ("[]", "not an object"),
            ("{\"schema\": \"wrong\"}", "schema mismatch"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("{\"a\": {\"nested\": 1}}", "nesting"),
            ("{\"a\": -1}", "negative number"),
            ("{\"a\": \"x\\\"y\"}", "escape"),
        ] {
            assert!(from_json(bad).is_err(), "accepted {why}: {bad}");
        }
        // A valid object missing required fields is also rejected.
        assert!(from_json(&format!("{{\"schema\": \"{SCHEMA}\"}}")).is_err());
    }

    #[test]
    fn write_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("oasis-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = Scenario::generate(1);
        let b = Scenario::generate(2);
        let pa = write_repro(&dir, &a, Some(OracleKind::Abort)).expect("write a");
        let pb = write_repro(&dir, &b, None).expect("write b");
        assert_ne!(pa, pb);
        let corpus = load_dir(&dir).expect("load");
        assert_eq!(corpus.len(), 2);
        assert!(corpus.skipped.is_empty());
        assert!(corpus
            .entries
            .iter()
            .any(|e| e.scenario == a && e.oracle == Some(OracleKind::Abort)));
        assert!(corpus
            .entries
            .iter()
            .any(|e| e.scenario == b && e.oracle.is_none()));
        // Missing directory is an empty corpus, not an error.
        std::fs::remove_dir_all(&dir).expect("cleanup");
        assert!(load_dir(&dir).expect("missing dir").is_empty());
    }

    #[test]
    fn garbage_files_are_skipped_with_typed_warnings_not_fatal() {
        let dir =
            std::env::temp_dir().join(format!("oasis-fuzz-corpus-garbage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let good = Scenario::generate(3);
        write_repro(&dir, &good, None).expect("write good repro");
        // Plant the three failure shapes next to it: a non-JSON file, an
        // unparsable .json file, and a structurally-valid .json file with
        // a bad schema. None of them may sink the good repro.
        std::fs::write(dir.join("README.txt"), "not a repro").expect("write txt");
        std::fs::write(dir.join("broken.json"), "{ this is not json").expect("write broken");
        std::fs::write(dir.join("wrong-schema.json"), "{\"schema\": \"nope\"}")
            .expect("write wrong schema");
        std::fs::create_dir_all(dir.join("subdir")).expect("mkdir subdir");

        let corpus = load_dir(&dir).expect("directory itself is readable");
        assert_eq!(corpus.len(), 1, "the good repro survives");
        assert_eq!(corpus.entries[0].scenario, good);
        assert_eq!(corpus.skipped.len(), 3, "{:?}", corpus.skipped);
        let reason_for = |name: &str| {
            corpus
                .skipped
                .iter()
                .find(|s| s.path.file_name().is_some_and(|f| f == name))
                .unwrap_or_else(|| panic!("{name} not in skipped list"))
                .reason
                .clone()
        };
        assert!(reason_for("README.txt").contains("not a .json"));
        assert!(reason_for("broken.json").contains("malformed"));
        assert!(reason_for("wrong-schema.json").contains("malformed"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
