//! The differential policy oracle.
//!
//! Policies may change *placement and timing* — where pages live, how long
//! accesses take — but never *semantics*: every access retires, no page is
//! lost or invented, no run panics, and determinism (replay and
//! kill/resume) holds under every policy. [`check`] runs one generated
//! scenario under all four core policies and verifies exactly that,
//! returning the first violation found.

use std::panic::{catch_unwind, AssertUnwindSafe};

use oasis_engine::SimRng;
use oasis_mgpu::{RunReport, System};
use oasis_workloads::Trace;

use crate::scenario::{oracle_policies, Scenario};

/// Which oracle a scenario violated. The shrinker preserves this kind: a
/// reduction is accepted only if the *same* check still fails, so shrinking
/// can't wander from (say) a guard violation to an unrelated timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// A run aborted with a typed `RunError` despite `RecordAndContinue`
    /// (guard violation, stall, or unabsorbable error).
    Abort,
    /// A run panicked — the one thing typed-error discipline forbids.
    Panic,
    /// The post-run invariant sweep (`System::validate`) failed.
    GuardViolation,
    /// Policies disagree on the final set of registered pages.
    PageSetMismatch,
    /// Policies disagree on how many accesses retired (fault-free runs).
    AccessCountMismatch,
    /// Errors were recorded in a run whose fault plan schedules none.
    UnexpectedErrors,
    /// A same-seed re-run diverged from the first run.
    ReplayDivergence,
    /// A kill/checkpoint/resume run diverged from the straight run.
    ResumeDivergence,
}

impl OracleKind {
    /// Stable corpus-file identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            OracleKind::Abort => "abort",
            OracleKind::Panic => "panic",
            OracleKind::GuardViolation => "guard-violation",
            OracleKind::PageSetMismatch => "page-set-mismatch",
            OracleKind::AccessCountMismatch => "access-count-mismatch",
            OracleKind::UnexpectedErrors => "unexpected-errors",
            OracleKind::ReplayDivergence => "replay-divergence",
            OracleKind::ResumeDivergence => "resume-divergence",
        }
    }

    /// Inverse of [`OracleKind::as_str`].
    pub fn parse(s: &str) -> Option<OracleKind> {
        [
            OracleKind::Abort,
            OracleKind::Panic,
            OracleKind::GuardViolation,
            OracleKind::PageSetMismatch,
            OracleKind::AccessCountMismatch,
            OracleKind::UnexpectedErrors,
            OracleKind::ReplayDivergence,
            OracleKind::ResumeDivergence,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One oracle failure: which check fired and a human-readable account.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The oracle that fired.
    pub kind: OracleKind,
    /// What happened, naming the policy involved where applicable.
    pub detail: String,
}

/// One successful policy run plus the functional state the differential
/// checks compare.
struct PolicyRun {
    report: RunReport,
    /// Sorted VPNs of every page registered in the host page table at end
    /// of run. Registration happens at allocation and is policy-invariant;
    /// a mismatch means a policy lost or invented a page.
    pages: Vec<u64>,
}

/// Runs `policy` over the scenario, converting panics, aborts, and guard
/// failures into violations.
fn run_policy(
    scenario: &Scenario,
    policy: &oasis_mgpu::Policy,
    trace: &Trace,
) -> Result<PolicyRun, Violation> {
    let name = policy.name();
    let config = scenario.config();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = System::new(config, policy);
        let run = sys.run(trace);
        let validate = sys.validate().map_err(|e| e.to_string());
        let mut pages: Vec<u64> = sys
            .driver()
            .state
            .host_table
            .iter()
            .map(|(vpn, _)| vpn.0)
            .collect();
        pages.sort_unstable();
        (run, validate, pages)
    }));
    let (run, validate, pages) = outcome.map_err(|payload| Violation {
        kind: OracleKind::Panic,
        detail: format!("{name}: panicked: {}", panic_message(&*payload)),
    })?;
    let report = run.map_err(|e| Violation {
        kind: OracleKind::Abort,
        detail: format!("{name}: aborted: {e}"),
    })?;
    validate.map_err(|e| Violation {
        kind: OracleKind::GuardViolation,
        detail: format!("{name}: post-run validate failed: {e}"),
    })?;
    Ok(PolicyRun { report, pages })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Checks every oracle against `scenario`, returning the first violation
/// (or `None`: the scenario is clean). Deterministic: every internal
/// choice — which policy is replayed, where the kill lands — derives from
/// `scenario.seed`.
pub fn check(scenario: &Scenario) -> Option<Violation> {
    let trace = scenario.trace();
    let policies = oracle_policies();

    // Per-policy oracles: completes, no panic, guard-clean.
    let mut runs = Vec::with_capacity(policies.len());
    for policy in &policies {
        match run_policy(scenario, policy, &trace) {
            Ok(run) => runs.push(run),
            Err(v) => return Some(v),
        }
    }

    // Differential oracles: functional state must agree across policies.
    let reference = &runs[0];
    let fault_free = scenario.fault_plan.ecc.is_empty();
    for (policy, run) in policies.iter().zip(&runs).skip(1) {
        if run.pages != reference.pages {
            return Some(Violation {
                kind: OracleKind::PageSetMismatch,
                detail: format!(
                    "{} registers {} pages, {} registers {}",
                    policies[0].name(),
                    reference.pages.len(),
                    policy.name(),
                    run.pages.len()
                ),
            });
        }
        if fault_free && run.report.accesses != reference.report.accesses {
            return Some(Violation {
                kind: OracleKind::AccessCountMismatch,
                detail: format!(
                    "{} retired {} accesses, {} retired {}",
                    policies[0].name(),
                    reference.report.accesses,
                    policy.name(),
                    run.report.accesses
                ),
            });
        }
    }
    if fault_free {
        for (policy, run) in policies.iter().zip(&runs) {
            if run.report.errors_recorded != 0 {
                return Some(Violation {
                    kind: OracleKind::UnexpectedErrors,
                    detail: format!(
                        "{}: {} errors recorded with no ECC events scheduled (first: {})",
                        policy.name(),
                        run.report.errors_recorded,
                        run.report
                            .error_samples
                            .first()
                            .map_or("<none>", String::as_str)
                    ),
                });
            }
        }
    }

    // Determinism oracles on one seed-chosen policy.
    let mut rng = SimRng::seed_from_u64(scenario.seed ^ 0x0AC1_E5EE_D000_0001);
    let pick = rng.gen_below(policies.len());
    let policy = &policies[pick];
    let straight = &runs[pick].report;

    // Replay: a fresh same-config run must be bit-identical.
    match run_policy(scenario, policy, &trace) {
        Ok(again) => {
            if again.report.check_digests_against(straight).is_err()
                || !again.report.same_simulation(straight)
            {
                return Some(Violation {
                    kind: OracleKind::ReplayDivergence,
                    detail: format!("{}: same-seed re-run diverged", policy.name()),
                });
            }
        }
        Err(mut v) => {
            v.detail = format!("replay leg: {}", v.detail);
            return Some(v);
        }
    }

    // Kill/resume: checkpoint mid-run, drop the system, resume, finish.
    let epochs = trace.phases.len() as u64;
    if epochs >= 2 {
        let kill_at = rng.gen_range(1..epochs);
        match kill_and_resume(scenario, policy, &trace, kill_at) {
            Ok(resumed) => {
                if resumed.check_digests_against(straight).is_err()
                    || !resumed.same_simulation(straight)
                {
                    return Some(Violation {
                        kind: OracleKind::ResumeDivergence,
                        detail: format!(
                            "{}: killed at epoch {kill_at}/{epochs}, resumed run diverged",
                            policy.name()
                        ),
                    });
                }
            }
            Err(v) => return Some(v),
        }
    }

    None
}

fn kill_and_resume(
    scenario: &Scenario,
    policy: &oasis_mgpu::Policy,
    trace: &Trace,
    kill_at: u64,
) -> Result<RunReport, Violation> {
    let name = policy.name();
    let step = |what: &str, e: String| Violation {
        kind: OracleKind::ResumeDivergence,
        detail: format!("{name}: {what} failed: {e}"),
    };
    catch_unwind(AssertUnwindSafe(|| {
        let mut buf = Vec::new();
        {
            let mut first = System::new(scenario.config(), policy);
            first
                .run_prefix(trace, kill_at)
                .map_err(|e| step("prefix run", e.to_string()))?;
            first
                .checkpoint(&mut buf)
                .map_err(|e| step("checkpoint", e.to_string()))?;
        }
        let mut resumed = System::resume(&mut buf.as_slice(), trace)
            .map_err(|e| step("resume", e.to_string()))?;
        resumed
            .run(trace)
            .map_err(|e| step("resumed run", e.to_string()))
    }))
    .map_err(|payload| Violation {
        kind: OracleKind::Panic,
        detail: format!(
            "{name}: kill/resume leg panicked: {}",
            panic_message(&*payload)
        ),
    })?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_round_trip() {
        for kind in [
            OracleKind::Abort,
            OracleKind::Panic,
            OracleKind::GuardViolation,
            OracleKind::PageSetMismatch,
            OracleKind::AccessCountMismatch,
            OracleKind::UnexpectedErrors,
            OracleKind::ReplayDivergence,
            OracleKind::ResumeDivergence,
        ] {
            assert_eq!(OracleKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(OracleKind::parse("frob"), None);
    }

    #[test]
    fn a_known_clean_scenario_passes_every_oracle() {
        // Slow-ish (runs ~6 simulations) but the one in-crate proof that
        // the oracle harness itself is wired correctly.
        let s = Scenario::generate(0);
        if let Some(v) = check(&s) {
            panic!("seed 0 should be clean, got {}: {}", v.kind, v.detail);
        }
    }
}
