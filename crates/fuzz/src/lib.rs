//! Property-based scenario fuzzer for the OASIS simulator.
//!
//! Every test elsewhere in the workspace exercises a hand-picked scenario;
//! this crate explores the random space of (workload × platform × fault
//! plan × policy) combinations automatically, exploiting the simulator's
//! determinism end to end:
//!
//! 1. **Generate** ([`scenario`]): one `SimRng` seed expands into a full
//!    scenario — app, GPU count, footprint, page size, placement, capacity
//!    pressure, and a valid hardware-fault plan.
//! 2. **Check** ([`oracle`]): the scenario runs under all four core
//!    policies. Policies may change placement and timing, never semantics —
//!    so final registered page sets and retired access counts must agree,
//!    no run may panic or abort under `RecordAndContinue`, the invariant
//!    guard must stay clean, and both replay and kill/resume must be
//!    bit-identical.
//! 3. **Shrink** ([`shrink`]): on a violation, delta-debugging reduces the
//!    scenario (drop fault events, truncate kernels, fewer GPUs, less
//!    memory) while the same oracle keeps firing.
//! 4. **Remember** ([`corpus`]): the minimal repro is written as a JSON
//!    file under `tests/corpus/`, which the regression suite replays
//!    forever after.
//!
//! The CLI front end is `oasis-sim fuzz`; [`run_fuzz`] is the library
//! entry point it wraps.

pub mod corpus;
pub mod oracle;
pub mod scenario;
pub mod shrink;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use oasis_engine::SimRng;

pub use corpus::{from_json, load_dir, to_json, write_repro};
pub use oracle::{check, OracleKind, Violation};
pub use scenario::{Scenario, FUZZ_APPS};
pub use shrink::{shrink, ShrinkResult, DEFAULT_SHRINK_BUDGET};

/// Knobs for one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: case `i` fuzzes the scenario whose seed is the `i`-th
    /// draw of this seed's RNG stream, so `(seed, i)` pins any case.
    pub seed: u64,
    /// Cases to attempt.
    pub cases: u64,
    /// Optional wall-clock bound; the loop stops cleanly at the first case
    /// boundary past the budget.
    pub time_budget: Option<Duration>,
    /// Where to write shrunk repros (`None` disables corpus writing, e.g.
    /// for exploratory runs in a read-only checkout).
    pub corpus_dir: Option<PathBuf>,
    /// Oracle evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
}

impl FuzzOptions {
    /// A session with the given seed and case count and default budgets.
    pub fn new(seed: u64, cases: u64) -> Self {
        FuzzOptions {
            seed,
            cases,
            time_budget: None,
            corpus_dir: None,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
        }
    }
}

/// Everything known about one failing case: the original scenario, the
/// shrunk repro, and where it was saved.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Which case of the session failed.
    pub case_index: u64,
    /// The scenario as generated.
    pub original: Scenario,
    /// The minimized scenario (still failing with the same oracle).
    pub shrunk: Scenario,
    /// The violation the shrunk scenario produces.
    pub violation: Violation,
    /// Corpus file holding the repro, when a corpus dir was configured
    /// and writable.
    pub corpus_path: Option<PathBuf>,
    /// Oracle evaluations the shrinker spent.
    pub shrink_attempts: usize,
}

/// Result of a fuzzing session: how far it got and the first failure, if
/// any. The loop stops at the first violation — one shrunk, corpus-saved
/// repro is worth more than a tally of unminimized failures.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually checked (may be short of the request when the time
    /// budget expires or a failure stops the loop).
    pub cases_run: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The first failing case, shrunk and saved.
    pub failure: Option<CaseFailure>,
}

/// Runs a fuzzing session: generate → check per case, then shrink + save
/// on the first violation.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let started = Instant::now();
    let mut master = SimRng::seed_from_u64(opts.seed);
    let mut cases_run = 0u64;
    for case_index in 0..opts.cases {
        if opts
            .time_budget
            .is_some_and(|budget| started.elapsed() >= budget)
        {
            break;
        }
        let scenario_seed = master.next_u64();
        let scenario = Scenario::generate(scenario_seed);
        cases_run += 1;
        if let Some(violation) = check(&scenario) {
            let result = shrink(&scenario, &violation, opts.shrink_budget);
            let corpus_path = opts.corpus_dir.as_ref().and_then(|dir| {
                write_repro(dir, &result.scenario, Some(result.violation.kind)).ok()
            });
            return FuzzReport {
                cases_run,
                elapsed: started.elapsed(),
                failure: Some(CaseFailure {
                    case_index,
                    original: scenario,
                    shrunk: result.scenario,
                    violation: result.violation,
                    corpus_path,
                    shrink_attempts: result.attempts,
                }),
            };
        }
    }
    FuzzReport {
        cases_run,
        elapsed: started.elapsed(),
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_reproducible() {
        // The i-th scenario of a session depends only on (seed, i).
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..10 {
            assert_eq!(
                Scenario::generate(a.next_u64()),
                Scenario::generate(b.next_u64())
            );
        }
    }

    #[test]
    fn a_short_clean_session_reports_all_cases_run() {
        let report = run_fuzz(&FuzzOptions::new(0xFA57, 2));
        assert_eq!(report.cases_run, 2);
        assert!(
            report.failure.is_none(),
            "unexpected failure: {:?}",
            report.failure
        );
    }

    #[test]
    fn zero_time_budget_stops_before_any_case() {
        let mut opts = FuzzOptions::new(1, 100);
        opts.time_budget = Some(Duration::ZERO);
        let report = run_fuzz(&opts);
        assert_eq!(report.cases_run, 0);
        assert!(report.failure.is_none());
    }
}
