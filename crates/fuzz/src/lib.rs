//! Property-based scenario fuzzer for the OASIS simulator.
//!
//! Every test elsewhere in the workspace exercises a hand-picked scenario;
//! this crate explores the random space of (workload × platform × fault
//! plan × policy) combinations automatically, exploiting the simulator's
//! determinism end to end:
//!
//! 1. **Generate** ([`scenario`]): one `SimRng` seed expands into a full
//!    scenario — app, GPU count, footprint, page size, placement, capacity
//!    pressure, and a valid hardware-fault plan.
//! 2. **Check** ([`oracle`]): the scenario runs under all four core
//!    policies. Policies may change placement and timing, never semantics —
//!    so final registered page sets and retired access counts must agree,
//!    no run may panic or abort under `RecordAndContinue`, the invariant
//!    guard must stay clean, and both replay and kill/resume must be
//!    bit-identical.
//! 3. **Shrink** ([`shrink`]): on a violation, delta-debugging reduces the
//!    scenario (drop fault events, truncate kernels, fewer GPUs, less
//!    memory) while the same oracle keeps firing.
//! 4. **Remember** ([`corpus`]): the minimal repro is written as a JSON
//!    file under `tests/corpus/`, which the regression suite replays
//!    forever after.
//!
//! The CLI front end is `oasis-sim fuzz`; [`run_fuzz`] is the library
//! entry point it wraps.

pub mod corpus;
pub mod oracle;
pub mod scenario;
pub mod shrink;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use oasis_engine::pool::{run_sweep, Job, JobOutcome, PoolConfig};
use oasis_engine::SimRng;

pub use corpus::{from_json, load_dir, to_json, write_repro, Corpus, CorpusEntry, SkippedFile};
pub use oracle::{check, OracleKind, Violation};
pub use scenario::{Scenario, FUZZ_APPS};
pub use shrink::{shrink, ShrinkResult, DEFAULT_SHRINK_BUDGET};

/// Knobs for one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: case `i` fuzzes the scenario whose seed is the `i`-th
    /// draw of this seed's RNG stream, so `(seed, i)` pins any case.
    pub seed: u64,
    /// Cases to attempt.
    pub cases: u64,
    /// Optional wall-clock bound; the sweep stops cleanly at the first
    /// dispatch-wave boundary past the budget.
    pub time_budget: Option<Duration>,
    /// Where to write shrunk repros (`None` disables corpus writing, e.g.
    /// for exploratory runs in a read-only checkout).
    pub corpus_dir: Option<PathBuf>,
    /// Oracle evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
    /// Worker threads for the case sweep (1 = the classic serial loop).
    pub jobs: usize,
    /// Per-case wall-clock deadline; a case that blows it is abandoned
    /// and its worker respawned.
    pub deadline: Option<Duration>,
    /// Attempts per case before it counts as a job failure (at least 1).
    pub attempts: u32,
}

impl FuzzOptions {
    /// A session with the given seed and case count and default budgets.
    pub fn new(seed: u64, cases: u64) -> Self {
        FuzzOptions {
            seed,
            cases,
            time_budget: None,
            corpus_dir: None,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            jobs: 1,
            deadline: None,
            attempts: 1,
        }
    }
}

/// Everything known about one failing case: the original scenario, the
/// shrunk repro, and where it was saved.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Which case of the session failed.
    pub case_index: u64,
    /// The scenario as generated.
    pub original: Scenario,
    /// The minimized scenario (still failing with the same oracle).
    pub shrunk: Scenario,
    /// The violation the shrunk scenario produces.
    pub violation: Violation,
    /// Corpus file holding the repro, when a corpus dir was configured
    /// and writable.
    pub corpus_path: Option<PathBuf>,
    /// Oracle evaluations the shrinker spent.
    pub shrink_attempts: usize,
}

/// One violating case from the sweep (unshrunk; the lowest-index one is
/// additionally shrunk into [`FuzzReport::failure`]).
#[derive(Debug, Clone)]
pub struct CaseViolation {
    /// Which case of the session violated.
    pub case_index: u64,
    /// The scenario as generated.
    pub scenario: Scenario,
    /// What the oracle reported.
    pub violation: Violation,
}

/// A case whose *job* failed under supervision — it panicked past the
/// oracle's own containment, blew its deadline, or exhausted retries —
/// as opposed to a case whose oracle found a simulator violation.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Which case of the session was lost.
    pub case_index: u64,
    /// The scenario seed, so `(seed, case)` stays reproducible.
    pub scenario_seed: u64,
    /// The supervision error, rendered.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Whether the job ended quarantined (crashed/hung worker) rather
    /// than merely failed.
    pub quarantined: bool,
}

/// Result of a fuzzing session. Unlike the pre-pool fuzzer, the sweep
/// runs *every* case — a violation (or a hung worker) costs one case,
/// never the rest of the campaign — and then shrinks the lowest-index
/// violation into one corpus-saved repro.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually checked (short of the request only when the time
    /// budget expires between dispatch waves).
    pub cases_run: u64,
    /// Wall-clock time spent (not deterministic).
    pub elapsed: Duration,
    /// Every violating case, in case order.
    pub violations: Vec<CaseViolation>,
    /// The lowest-index failing case, shrunk and saved.
    pub failure: Option<CaseFailure>,
    /// Cases lost to supervision (panic/deadline/retry-exhaustion), in
    /// case order.
    pub job_failures: Vec<JobFailure>,
    /// Retried attempts across the sweep.
    pub retries: u64,
    /// Workers respawned after deadline abandonments (0 unless a
    /// deadline is configured; not deterministic when it fires).
    pub workers_respawned: u64,
}

impl FuzzReport {
    /// No oracle violations and no supervision casualties.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.job_failures.is_empty()
    }
}

/// Runs a fuzzing session: all cases fan out over the supervised pool
/// (generate → differential oracle per case), then the lowest-index
/// violation is shrunk and corpus-saved.
///
/// The sweep is deterministic in everything but wall-clock: case seeds
/// are drawn from the master seed up front and results are collected in
/// case order. When [`FuzzOptions::time_budget`] is `None` the report's
/// content is fully independent of [`FuzzOptions::jobs`]; with a budget,
/// the dispatch-wave layout is still jobs-independent, but `cases_run`
/// depends on how many waves fit inside the wall-clock budget.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let started = Instant::now();
    let mut master = SimRng::seed_from_u64(opts.seed);
    let case_seeds: Vec<u64> = (0..opts.cases).map(|_| master.next_u64()).collect();

    let pool = PoolConfig {
        workers: opts.jobs.max(1),
        deadline: opts.deadline,
        max_attempts: opts.attempts.max(1),
        ..PoolConfig::default()
    };
    // With no time budget, dispatch everything as one sweep: every case
    // runs, so the report is byte-identical at any `jobs`. With a budget,
    // dispatch in waves of a *constant* size — never derived from the
    // worker count — so the wave layout (and therefore which boundary the
    // budget can cut at) is also independent of `jobs`; how many waves
    // fit inside the budget still depends on wall-clock speed.
    const BUDGET_WAVE: usize = 32;
    let wave = if opts.time_budget.is_some() {
        BUDGET_WAVE
    } else {
        case_seeds.len().max(1)
    };

    let mut cases_run = 0u64;
    let mut violations = Vec::new();
    let mut job_failures = Vec::new();
    let mut retries = 0u64;
    let mut workers_respawned = 0u64;
    for wave_start in (0..case_seeds.len()).step_by(wave) {
        if opts
            .time_budget
            .is_some_and(|budget| started.elapsed() >= budget)
        {
            break;
        }
        let wave_end = (wave_start + wave).min(case_seeds.len());
        let jobs: Vec<Job<Option<Violation>>> = case_seeds[wave_start..wave_end]
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                Job::new(format!("case-{}", wave_start + i), move |_ctx| {
                    Ok(check(&Scenario::generate(seed)))
                })
            })
            .collect();
        let sweep = run_sweep(&pool, jobs);
        retries += sweep.retries;
        workers_respawned += sweep.workers_respawned;
        for record in sweep.jobs {
            let case_index = wave_start as u64 + record.id;
            let scenario_seed = case_seeds[case_index as usize];
            cases_run += 1;
            match record.outcome {
                JobOutcome::Completed(None) => {}
                JobOutcome::Completed(Some(violation)) => violations.push(CaseViolation {
                    case_index,
                    scenario: Scenario::generate(scenario_seed),
                    violation,
                }),
                JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => {
                    let quarantined = e.crashed_worker();
                    job_failures.push(JobFailure {
                        case_index,
                        scenario_seed,
                        error: e.to_string(),
                        attempts: record.attempts,
                        quarantined,
                    });
                }
            }
        }
    }

    // Shrink the lowest-index violation: one minimal, corpus-saved repro
    // is the actionable artifact; the full tally stays in the report.
    let failure = violations.first().map(|first| {
        let result = shrink(&first.scenario, &first.violation, opts.shrink_budget);
        let corpus_path = opts
            .corpus_dir
            .as_ref()
            .and_then(|dir| write_repro(dir, &result.scenario, Some(result.violation.kind)).ok());
        CaseFailure {
            case_index: first.case_index,
            original: first.scenario.clone(),
            shrunk: result.scenario,
            violation: result.violation,
            corpus_path,
            shrink_attempts: result.attempts,
        }
    });

    FuzzReport {
        cases_run,
        elapsed: started.elapsed(),
        violations,
        failure,
        job_failures,
        retries,
        workers_respawned,
    }
}

/// Renders a machine-readable session report. With no time budget set,
/// everything in it except the `"elapsed_secs"` line is deterministic
/// for a given `(seed, cases)` regardless of `jobs` — which is exactly
/// what lets CI `cmp` a serial and a parallel run after dropping that
/// one line. (A time budget makes `cases_run` wall-clock dependent, so
/// budgeted runs are not byte-comparable.)
pub fn report_json(opts: &FuzzOptions, report: &FuzzReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"oasis-fuzz-report-v2\",\n");
    out.push_str(&format!("  \"master_seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"cases_requested\": {},\n", opts.cases));
    out.push_str(&format!("  \"cases_run\": {},\n", report.cases_run));
    out.push_str(&format!(
        "  \"elapsed_secs\": {:.3},\n",
        report.elapsed.as_secs_f64()
    ));
    out.push_str(&format!("  \"violations\": {},\n", report.violations.len()));
    out.push_str(&format!(
        "  \"violation_cases\": [{}],\n",
        report
            .violations
            .iter()
            .map(|v| v.case_index.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"job_failures\": {},\n",
        report.job_failures.len()
    ));
    out.push_str(&format!(
        "  \"quarantined_cases\": [{}],\n",
        report
            .job_failures
            .iter()
            .filter(|f| f.quarantined)
            .map(|f| f.case_index.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"retries\": {}\n", report.retries));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_reproducible() {
        // The i-th scenario of a session depends only on (seed, i).
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..10 {
            assert_eq!(
                Scenario::generate(a.next_u64()),
                Scenario::generate(b.next_u64())
            );
        }
    }

    #[test]
    fn a_short_clean_session_reports_all_cases_run() {
        let report = run_fuzz(&FuzzOptions::new(0xFA57, 2));
        assert_eq!(report.cases_run, 2);
        assert!(
            report.failure.is_none(),
            "unexpected failure: {:?}",
            report.failure
        );
    }

    #[test]
    fn zero_time_budget_stops_before_any_case() {
        let mut opts = FuzzOptions::new(1, 100);
        opts.time_budget = Some(Duration::ZERO);
        let report = run_fuzz(&opts);
        assert_eq!(report.cases_run, 0);
        assert!(report.failure.is_none());
    }
}
