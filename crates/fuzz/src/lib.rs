//! Property-based scenario fuzzer for the OASIS simulator.
//!
//! Every test elsewhere in the workspace exercises a hand-picked scenario;
//! this crate explores the random space of (workload × platform × fault
//! plan × policy) combinations automatically, exploiting the simulator's
//! determinism end to end:
//!
//! 1. **Generate** ([`scenario`]): one `SimRng` seed expands into a full
//!    scenario — app, GPU count, footprint, page size, placement, capacity
//!    pressure, and a valid hardware-fault plan.
//! 2. **Check** ([`oracle`]): the scenario runs under all four core
//!    policies. Policies may change placement and timing, never semantics —
//!    so final registered page sets and retired access counts must agree,
//!    no run may panic or abort under `RecordAndContinue`, the invariant
//!    guard must stay clean, and both replay and kill/resume must be
//!    bit-identical.
//! 3. **Shrink** ([`shrink`]): on a violation, delta-debugging reduces the
//!    scenario (drop fault events, truncate kernels, fewer GPUs, less
//!    memory) while the same oracle keeps firing.
//! 4. **Remember** ([`corpus`]): the minimal repro is written as a JSON
//!    file under `tests/corpus/`, which the regression suite replays
//!    forever after.
//!
//! The CLI front end is `oasis-sim fuzz`; [`run_fuzz`] is the library
//! entry point it wraps.

pub mod corpus;
pub mod oracle;
pub mod scenario;
pub mod shrink;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use oasis_engine::codec::{ByteReader, ByteWriter};
use oasis_engine::journal::{AdjudicatedOutcome, Adjudication, JournalWriter, Recovery};
use oasis_engine::pool::{
    run_sweep_controlled, Job, JobOutcome, PoolConfig, StopHandle, SweepControl,
};
use oasis_engine::{fnv1a, SimRng};

pub use corpus::{
    from_json, load_dir, parse_flat_object, scenario_digest, to_json, to_json_line, write_repro,
    Corpus, CorpusEntry, JsonValue, SkippedFile,
};
pub use oracle::{check, OracleKind, Violation};
pub use scenario::{Scenario, FUZZ_APPS};
pub use shrink::{shrink, ShrinkResult, DEFAULT_SHRINK_BUDGET};

/// Knobs for one fuzzing session.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: case `i` fuzzes the scenario whose seed is the `i`-th
    /// draw of this seed's RNG stream, so `(seed, i)` pins any case.
    pub seed: u64,
    /// Cases to attempt.
    pub cases: u64,
    /// Optional wall-clock bound; the sweep stops cleanly at the first
    /// dispatch-wave boundary past the budget.
    pub time_budget: Option<Duration>,
    /// Where to write shrunk repros (`None` disables corpus writing, e.g.
    /// for exploratory runs in a read-only checkout).
    pub corpus_dir: Option<PathBuf>,
    /// Oracle evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
    /// Worker threads for the case sweep (1 = the classic serial loop).
    pub jobs: usize,
    /// Per-case wall-clock deadline; a case that blows it is abandoned
    /// and its worker respawned.
    pub deadline: Option<Duration>,
    /// Attempts per case before it counts as a job failure (at least 1).
    pub attempts: u32,
    /// Write-ahead sweep journal: every dispatch and every adjudicated
    /// outcome is fsync'd here, so a killed sweep can be resumed.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal at [`FuzzOptions::journal`]:
    /// already-adjudicated cases are merged from the journal instead of
    /// re-run. The journal must carry the same `(seed, cases)` tag.
    pub resume_sweep: bool,
    /// Cooperative stop: once raised (e.g. by a signal handler) the sweep
    /// drains — in-flight cases finish, nothing new dispatches — and the
    /// report comes back with [`FuzzReport::interrupted`] set.
    pub stop: Option<StopHandle>,
}

impl FuzzOptions {
    /// A session with the given seed and case count and default budgets.
    pub fn new(seed: u64, cases: u64) -> Self {
        FuzzOptions {
            seed,
            cases,
            time_budget: None,
            corpus_dir: None,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            jobs: 1,
            deadline: None,
            attempts: 1,
            journal: None,
            resume_sweep: false,
            stop: None,
        }
    }

    /// The journal tag pinning this sweep's identity: a resume is only
    /// valid against a journal created with the same seed and case count.
    pub fn sweep_tag(&self) -> u64 {
        fnv1a(
            format!(
                "oasis-fuzz-sweep-v1 seed={} cases={}",
                self.seed, self.cases
            )
            .as_bytes(),
        )
    }
}

/// Everything known about one failing case: the original scenario, the
/// shrunk repro, and where it was saved.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Which case of the session failed.
    pub case_index: u64,
    /// The scenario as generated.
    pub original: Scenario,
    /// The minimized scenario (still failing with the same oracle).
    pub shrunk: Scenario,
    /// The violation the shrunk scenario produces.
    pub violation: Violation,
    /// Corpus file holding the repro, when a corpus dir was configured
    /// and writable.
    pub corpus_path: Option<PathBuf>,
    /// Oracle evaluations the shrinker spent.
    pub shrink_attempts: usize,
}

/// One violating case from the sweep (unshrunk; the lowest-index one is
/// additionally shrunk into [`FuzzReport::failure`]).
#[derive(Debug, Clone)]
pub struct CaseViolation {
    /// Which case of the session violated.
    pub case_index: u64,
    /// The scenario as generated.
    pub scenario: Scenario,
    /// What the oracle reported.
    pub violation: Violation,
}

/// A case whose *job* failed under supervision — it panicked past the
/// oracle's own containment, blew its deadline, or exhausted retries —
/// as opposed to a case whose oracle found a simulator violation.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Which case of the session was lost.
    pub case_index: u64,
    /// The scenario seed, so `(seed, case)` stays reproducible.
    pub scenario_seed: u64,
    /// The supervision error, rendered.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Whether the job ended quarantined (crashed/hung worker) rather
    /// than merely failed.
    pub quarantined: bool,
}

/// Result of a fuzzing session. Unlike the pre-pool fuzzer, the sweep
/// runs *every* case — a violation (or a hung worker) costs one case,
/// never the rest of the campaign — and then shrinks the lowest-index
/// violation into one corpus-saved repro.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually checked (short of the request only when the time
    /// budget expires between dispatch waves).
    pub cases_run: u64,
    /// Wall-clock time spent (not deterministic).
    pub elapsed: Duration,
    /// Every violating case, in case order.
    pub violations: Vec<CaseViolation>,
    /// The lowest-index failing case, shrunk and saved.
    pub failure: Option<CaseFailure>,
    /// Cases lost to supervision (panic/deadline/retry-exhaustion), in
    /// case order.
    pub job_failures: Vec<JobFailure>,
    /// Retried attempts across the sweep (journaled resumes included:
    /// computed from per-case attempt counts, so it is identical whether
    /// the sweep ran straight through or across several processes).
    pub retries: u64,
    /// Workers respawned after deadline abandonments (0 unless a
    /// deadline is configured; not deterministic when it fires).
    pub workers_respawned: u64,
    /// Cases merged from a resumed journal instead of re-run.
    pub resumed_cases: u64,
    /// Whether a cooperative stop drained the sweep before every case was
    /// adjudicated. An interrupted journaled sweep is resumable.
    pub interrupted: bool,
    /// Human-readable journal warnings (salvaged tail, duplicate
    /// adjudication records). Never part of the JSON report.
    pub warnings: Vec<String>,
}

impl FuzzReport {
    /// No oracle violations and no supervision casualties.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.job_failures.is_empty()
    }
}

/// One case's terminal state, as adjudicated by the pool or replayed
/// from a journal.
enum CaseOutcome {
    /// The oracle found nothing.
    Clean,
    /// The oracle reported a violation.
    Violation(Violation),
    /// The *job* was lost to supervision (panic/deadline/retries).
    Lost {
        /// The supervision error, rendered.
        error: String,
        /// Whether the worker was crashed/wedged (vs a typed failure).
        quarantined: bool,
    },
}

/// A case outcome plus the attempts it consumed.
struct CaseRecord {
    outcome: CaseOutcome,
    attempts: u32,
}

/// Journal payloads keep violation details and error strings bounded so
/// one pathological message cannot overflow the u16 string prefix.
const PAYLOAD_CLIP_CHARS: usize = 2048;

fn clip(s: &str) -> String {
    if s.len() <= PAYLOAD_CLIP_CHARS {
        s.to_string()
    } else {
        s.chars().take(PAYLOAD_CLIP_CHARS).collect()
    }
}

/// Encodes a pool outcome into the opaque `Adjudicated` journal payload.
fn encode_case_payload(outcome: &JobOutcome<Option<Violation>>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match outcome {
        JobOutcome::Completed(None) => w.u8(0),
        JobOutcome::Completed(Some(v)) => {
            w.u8(1);
            w.str(v.kind.as_str());
            w.str(&clip(&v.detail));
        }
        JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => w.str(&clip(&e.to_string())),
    }
    w.into_vec()
}

/// Decodes one journaled adjudication back into a case record.
fn decode_case_payload(case: u64, adj: &Adjudication) -> Result<CaseRecord, String> {
    let mut r = ByteReader::new("fuzz-journal-case", &adj.payload);
    let ctx = |e: oasis_engine::CodecError| format!("journaled case {case} is undecodable: {e}");
    let outcome = match adj.outcome {
        AdjudicatedOutcome::Completed => match r.u8().map_err(ctx)? {
            0 => CaseOutcome::Clean,
            1 => {
                let kind_str = r.str().map_err(ctx)?;
                let kind = OracleKind::parse(&kind_str).ok_or_else(|| {
                    format!("journaled case {case} names unknown oracle kind '{kind_str}'")
                })?;
                let detail = r.str().map_err(ctx)?;
                CaseOutcome::Violation(Violation { kind, detail })
            }
            b => {
                return Err(format!(
                    "journaled case {case} has bad verdict byte {b:#04x}"
                ))
            }
        },
        AdjudicatedOutcome::Failed => CaseOutcome::Lost {
            error: r.str().map_err(ctx)?,
            quarantined: false,
        },
        AdjudicatedOutcome::Quarantined => CaseOutcome::Lost {
            error: r.str().map_err(ctx)?,
            quarantined: true,
        },
    };
    Ok(CaseRecord {
        outcome,
        attempts: adj.attempts,
    })
}

/// Runs a fuzzing session: all cases fan out over the supervised pool
/// (generate → differential oracle per case), then the lowest-index
/// violation is shrunk and corpus-saved.
///
/// The sweep is deterministic in everything but wall-clock: case seeds
/// are drawn from the master seed up front and results are collected in
/// case order. When [`FuzzOptions::time_budget`] is `None` the report's
/// content is fully independent of [`FuzzOptions::jobs`]; with a budget,
/// the dispatch-wave layout is still jobs-independent, but `cases_run`
/// depends on how many waves fit inside the wall-clock budget.
///
/// With [`FuzzOptions::journal`] set, every dispatch and adjudication is
/// journaled write-ahead (fsync'd), and [`FuzzOptions::resume_sweep`]
/// merges a previous (killed or drained) sweep's adjudicated cases
/// instead of re-running them — because results are keyed and collected
/// by case index, a resumed budget-free report is byte-identical to a
/// straight run's. Errors are returned only for unusable journals (bad
/// tag, undecodable payload, append failure); oracle violations and lost
/// jobs stay inside the report.
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let started = Instant::now();
    let mut master = SimRng::seed_from_u64(opts.seed);
    let case_seeds: Vec<u64> = (0..opts.cases).map(|_| master.next_u64()).collect();

    // Journal setup: fresh create, or recover-and-resume. Adjudications
    // salvaged from the journal seed the outcome map; those cases are
    // never dispatched again.
    let mut warnings: Vec<String> = Vec::new();
    let mut outcomes: BTreeMap<u64, CaseRecord> = BTreeMap::new();
    let tag = opts.sweep_tag();
    let journal: Option<JournalWriter> = match &opts.journal {
        None => None,
        Some(path) if opts.resume_sweep => {
            let (writer, recovery): (JournalWriter, Recovery) = JournalWriter::resume(path, tag)
                .map_err(|e| format!("cannot resume sweep journal {}: {e}", path.display()))?;
            warnings.extend(recovery.warnings());
            for (&case, adj) in &recovery.adjudicated {
                if case < opts.cases {
                    outcomes.insert(case, decode_case_payload(case, adj)?);
                } else {
                    warnings.push(format!(
                        "journal adjudicates case {case}, beyond cases={}; ignored",
                        opts.cases
                    ));
                }
            }
            Some(writer)
        }
        Some(path) => {
            let label = format!("fuzz seed={} cases={}", opts.seed, opts.cases);
            Some(
                JournalWriter::create(path, tag, &label)
                    .map_err(|e| format!("cannot create sweep journal {}: {e}", path.display()))?,
            )
        }
    };
    let resumed_cases = outcomes.len() as u64;
    let journal = RefCell::new(journal);
    let journal_failure: RefCell<Option<String>> = RefCell::new(None);
    // The stop handle serves two masters: the caller's signal handler,
    // and the journal itself — an append failure stops the sweep rather
    // than silently running on without durability.
    let stop = opts.stop.clone().unwrap_or_default();

    let pool = PoolConfig {
        workers: opts.jobs.max(1),
        deadline: opts.deadline,
        max_attempts: opts.attempts.max(1),
        ..PoolConfig::default()
    };
    // With no time budget, dispatch everything as one sweep: every case
    // runs, so the report is byte-identical at any `jobs`. With a budget,
    // dispatch in waves of a *constant* size — never derived from the
    // worker count — so the wave layout (and therefore which boundary the
    // budget can cut at) is also independent of `jobs`; how many waves
    // fit inside the budget still depends on wall-clock speed.
    const BUDGET_WAVE: usize = 32;
    let remaining: Vec<u64> = (0..opts.cases)
        .filter(|case| !outcomes.contains_key(case))
        .collect();
    let wave = if opts.time_budget.is_some() {
        BUDGET_WAVE
    } else {
        remaining.len().max(1)
    };

    let mut workers_respawned = 0u64;
    let mut interrupted = false;
    for chunk in remaining.chunks(wave) {
        if opts
            .time_budget
            .is_some_and(|budget| started.elapsed() >= budget)
        {
            break;
        }
        if stop.is_stopped() {
            interrupted = true;
            break;
        }
        let jobs: Vec<Job<Option<Violation>>> = chunk
            .iter()
            .map(|&case| {
                let seed = case_seeds[case as usize];
                Job::new(format!("case-{case}"), move |_ctx| {
                    Ok(check(&Scenario::generate(seed)))
                })
            })
            .collect();
        // Pool job ids are wave-local; the observers translate them back
        // to sweep-level case indices before journaling.
        let mut on_dispatch = |pool_id: u64, attempt: u32| {
            if let Some(w) = journal.borrow_mut().as_mut() {
                if let Err(e) = w.dispatched(chunk[pool_id as usize], attempt) {
                    *journal_failure.borrow_mut() =
                        Some(format!("sweep journal append failed: {e}"));
                    stop.stop();
                }
            }
        };
        let mut on_adjudicated = |rec: &oasis_engine::pool::JobRecord<Option<Violation>>| {
            if let Some(w) = journal.borrow_mut().as_mut() {
                let payload = encode_case_payload(&rec.outcome);
                if let Err(e) = w.adjudicated(
                    chunk[rec.id as usize],
                    AdjudicatedOutcome::of(&rec.outcome),
                    rec.attempts,
                    &payload,
                ) {
                    *journal_failure.borrow_mut() =
                        Some(format!("sweep journal append failed: {e}"));
                    stop.stop();
                }
            }
        };
        let ctrl = SweepControl {
            stop: Some(stop.clone()),
            on_dispatch: Some(&mut on_dispatch),
            on_adjudicated: Some(&mut on_adjudicated),
        };
        let sweep = run_sweep_controlled(&pool, jobs, ctrl);
        workers_respawned += sweep.workers_respawned;
        for record in sweep.jobs {
            let case = chunk[record.id as usize];
            let attempts = record.attempts;
            let outcome = match record.outcome {
                JobOutcome::Completed(None) => CaseOutcome::Clean,
                JobOutcome::Completed(Some(violation)) => CaseOutcome::Violation(violation),
                JobOutcome::Failed(e) => CaseOutcome::Lost {
                    error: e.to_string(),
                    quarantined: false,
                },
                JobOutcome::Quarantined(e) => CaseOutcome::Lost {
                    error: e.to_string(),
                    quarantined: true,
                },
            };
            outcomes.insert(case, CaseRecord { outcome, attempts });
        }
        if sweep.interrupted {
            interrupted = true;
            break;
        }
    }

    if interrupted {
        // Clean-drain trailer: marks the journal deliberately incomplete
        // so a resume knows the previous process exited on purpose.
        if let Some(w) = journal.borrow_mut().as_mut() {
            if let Err(e) = w.interrupted(outcomes.len() as u64) {
                warnings.push(format!("could not journal the Interrupted trailer: {e}"));
            }
        }
    }
    if let Some(err) = journal_failure.into_inner() {
        return Err(err);
    }

    // Collect in case order — `outcomes` is keyed by case index, so a
    // resumed sweep interleaves journaled and fresh results correctly.
    let mut cases_run = 0u64;
    let mut violations = Vec::new();
    let mut job_failures = Vec::new();
    let mut retries = 0u64;
    for (&case, rec) in &outcomes {
        cases_run += 1;
        retries += u64::from(rec.attempts.saturating_sub(1));
        match &rec.outcome {
            CaseOutcome::Clean => {}
            CaseOutcome::Violation(violation) => violations.push(CaseViolation {
                case_index: case,
                scenario: Scenario::generate(case_seeds[case as usize]),
                violation: violation.clone(),
            }),
            CaseOutcome::Lost { error, quarantined } => job_failures.push(JobFailure {
                case_index: case,
                scenario_seed: case_seeds[case as usize],
                error: error.clone(),
                attempts: rec.attempts,
                quarantined: *quarantined,
            }),
        }
    }

    // Shrink the lowest-index violation: one minimal, corpus-saved repro
    // is the actionable artifact; the full tally stays in the report.
    // A drained sweep skips shrinking — the resume will do it with the
    // complete picture.
    let failure = if interrupted {
        None
    } else {
        violations.first().map(|first| {
            let result = shrink(&first.scenario, &first.violation, opts.shrink_budget);
            let corpus_path = opts.corpus_dir.as_ref().and_then(|dir| {
                write_repro(dir, &result.scenario, Some(result.violation.kind)).ok()
            });
            CaseFailure {
                case_index: first.case_index,
                original: first.scenario.clone(),
                shrunk: result.scenario,
                violation: result.violation,
                corpus_path,
                shrink_attempts: result.attempts,
            }
        })
    };

    Ok(FuzzReport {
        cases_run,
        elapsed: started.elapsed(),
        violations,
        failure,
        job_failures,
        retries,
        workers_respawned,
        resumed_cases,
        interrupted,
        warnings,
    })
}

/// Renders a machine-readable session report. With no time budget set,
/// everything in it except the `"elapsed_secs"` line is deterministic
/// for a given `(seed, cases)` regardless of `jobs` — which is exactly
/// what lets CI `cmp` a serial and a parallel run after dropping that
/// one line. (A time budget makes `cases_run` wall-clock dependent, so
/// budgeted runs are not byte-comparable.)
pub fn report_json(opts: &FuzzOptions, report: &FuzzReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"oasis-fuzz-report-v2\",\n");
    out.push_str(&format!("  \"master_seed\": {},\n", opts.seed));
    out.push_str(&format!("  \"cases_requested\": {},\n", opts.cases));
    out.push_str(&format!("  \"cases_run\": {},\n", report.cases_run));
    out.push_str(&format!(
        "  \"elapsed_secs\": {:.3},\n",
        report.elapsed.as_secs_f64()
    ));
    out.push_str(&format!("  \"violations\": {},\n", report.violations.len()));
    out.push_str(&format!(
        "  \"violation_cases\": [{}],\n",
        report
            .violations
            .iter()
            .map(|v| v.case_index.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"job_failures\": {},\n",
        report.job_failures.len()
    ));
    out.push_str(&format!(
        "  \"quarantined_cases\": [{}],\n",
        report
            .job_failures
            .iter()
            .filter(|f| f.quarantined)
            .map(|f| f.case_index.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"retries\": {}\n", report.retries));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_reproducible() {
        // The i-th scenario of a session depends only on (seed, i).
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..10 {
            assert_eq!(
                Scenario::generate(a.next_u64()),
                Scenario::generate(b.next_u64())
            );
        }
    }

    #[test]
    fn a_short_clean_session_reports_all_cases_run() {
        let report = run_fuzz(&FuzzOptions::new(0xFA57, 2)).expect("unjournaled run");
        assert_eq!(report.cases_run, 2);
        assert!(
            report.failure.is_none(),
            "unexpected failure: {:?}",
            report.failure
        );
    }

    #[test]
    fn zero_time_budget_stops_before_any_case() {
        let mut opts = FuzzOptions::new(1, 100);
        opts.time_budget = Some(Duration::ZERO);
        let report = run_fuzz(&opts).expect("unjournaled run");
        assert_eq!(report.cases_run, 0);
        assert!(report.failure.is_none());
    }

    #[test]
    fn the_sweep_tag_pins_seed_and_case_count() {
        assert_eq!(
            FuzzOptions::new(7, 10).sweep_tag(),
            FuzzOptions::new(7, 10).sweep_tag()
        );
        assert_ne!(
            FuzzOptions::new(7, 10).sweep_tag(),
            FuzzOptions::new(8, 10).sweep_tag()
        );
        assert_ne!(
            FuzzOptions::new(7, 10).sweep_tag(),
            FuzzOptions::new(7, 11).sweep_tag()
        );
    }

    #[test]
    fn a_pre_raised_stop_interrupts_before_any_case() {
        let stop = StopHandle::new();
        stop.stop();
        let mut opts = FuzzOptions::new(3, 5);
        opts.stop = Some(stop);
        let report = run_fuzz(&opts).expect("stop is not an error");
        assert!(report.interrupted);
        assert_eq!(report.cases_run, 0);
        assert!(report.failure.is_none());
    }

    #[test]
    fn case_payloads_round_trip_through_the_journal_encoding() {
        use oasis_engine::pool::JobError;
        let cases: Vec<JobOutcome<Option<Violation>>> = vec![
            JobOutcome::Completed(None),
            JobOutcome::Completed(Some(Violation {
                kind: OracleKind::Panic,
                detail: "boom".to_string(),
            })),
            JobOutcome::Failed(JobError::Failed("typed".to_string())),
            JobOutcome::Quarantined(JobError::Panicked("crash".to_string())),
        ];
        for (i, outcome) in cases.iter().enumerate() {
            let adj = Adjudication {
                outcome: AdjudicatedOutcome::of(outcome),
                attempts: 2,
                payload: encode_case_payload(outcome),
            };
            let rec = decode_case_payload(i as u64, &adj).expect("decode");
            assert_eq!(rec.attempts, 2);
            match (outcome, &rec.outcome) {
                (JobOutcome::Completed(None), CaseOutcome::Clean) => {}
                (JobOutcome::Completed(Some(v)), CaseOutcome::Violation(d)) => {
                    assert_eq!(v.kind, d.kind);
                    assert_eq!(v.detail, d.detail);
                }
                (JobOutcome::Failed(_), CaseOutcome::Lost { quarantined, .. }) => {
                    assert!(!quarantined);
                }
                (JobOutcome::Quarantined(_), CaseOutcome::Lost { quarantined, .. }) => {
                    assert!(quarantined);
                }
                _ => panic!("case {i}: outcome changed shape through the journal"),
            }
        }
    }
}
