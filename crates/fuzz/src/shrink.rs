//! Automatic delta-debugging repro minimization.
//!
//! Given a scenario that violates an oracle, [`shrink`] greedily applies
//! reductions — drop fault events, truncate kernels, shrink the GPU count
//! and footprint, simplify placement and page size — accepting a candidate
//! only if the *same* oracle kind still fires, and repeats to a fixpoint.
//! The result is the smallest scenario this move set can reach, which is
//! what gets written to the regression corpus.

use oasis_interconnect::FaultPlan;

use crate::oracle::{check, Violation};
use crate::scenario::Scenario;

/// Upper bound on oracle evaluations during one shrink. Each candidate
/// costs up to ~6 simulation runs; 128 attempts bounds shrinking at a few
/// seconds in release builds while still reaching a fixpoint for every
/// move set in practice (typical shrinks accept < 10 reductions).
pub const DEFAULT_SHRINK_BUDGET: usize = 128;

/// Outcome of a shrink: the minimal scenario, the violation it (still)
/// produces, and how much work finding it took.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized scenario.
    pub scenario: Scenario,
    /// The violation the minimized scenario produces (same kind as the
    /// original's).
    pub violation: Violation,
    /// Oracle evaluations spent.
    pub attempts: usize,
    /// Reductions accepted.
    pub accepted: usize,
}

/// Minimizes `scenario`, which must currently fail with `kind`.
///
/// Greedy fixpoint loop: propose candidates from most to least aggressive,
/// re-check each, keep the first that still fails with `kind`, restart.
/// Stops when a full round yields no acceptable reduction or `budget`
/// oracle evaluations have been spent.
pub fn shrink(scenario: &Scenario, violation: &Violation, budget: usize) -> ShrinkResult {
    let kind = violation.kind;
    let mut current = scenario.clone();
    let mut current_violation = violation.clone();
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    'fixpoint: loop {
        for candidate in candidates(&current) {
            if attempts >= budget {
                break 'fixpoint;
            }
            attempts += 1;
            if let Some(v) = check(&candidate) {
                if v.kind == kind {
                    current = candidate;
                    current_violation = v;
                    accepted += 1;
                    continue 'fixpoint;
                }
            }
        }
        break; // full round, nothing accepted: fixpoint.
    }
    ShrinkResult {
        scenario: current,
        violation: current_violation,
        attempts,
        accepted,
    }
}

/// Reduction candidates for one round, most aggressive first. Every
/// candidate is strictly "smaller" than `s` in some dimension, so the
/// greedy loop terminates.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |mutated: Scenario| {
        if mutated != *s && !out.contains(&mutated) {
            out.push(mutated);
        }
    };

    // Drop the whole fault plan, then individual events.
    if !s.fault_plan.is_empty() {
        let mut c = s.clone();
        c.fault_plan = FaultPlan {
            seed: s.fault_plan.seed,
            ..FaultPlan::default()
        };
        push(c);
        for i in 0..s.fault_plan.link_down.len() {
            let mut c = s.clone();
            c.fault_plan.link_down.remove(i);
            push(c);
        }
        for i in 0..s.fault_plan.flaky.len() {
            let mut c = s.clone();
            c.fault_plan.flaky.remove(i);
            push(c);
        }
        for i in 0..s.fault_plan.ecc.len() {
            let mut c = s.clone();
            c.fault_plan.ecc.remove(i);
            push(c);
        }
    }

    // Fewer kernels: straight to one, then one less.
    if s.max_phases > 1 {
        let mut c = s.clone();
        c.max_phases = 1;
        push(c);
        let mut c = s.clone();
        c.max_phases = s.max_phases - 1;
        push(c);
    }

    // Fewer GPUs: straight to one, to two, then one less. Fault events
    // naming dropped GPUs are removed so the candidate stays valid.
    for target in [1usize, 2, s.gpu_count.saturating_sub(1)] {
        if target >= 1 && target < s.gpu_count {
            let mut c = s.clone();
            c.gpu_count = target;
            restrict_plan(&mut c.fault_plan, target);
            push(c);
        }
    }

    // Smaller memory: minimum footprint, then halved.
    if s.footprint_mb > 2 {
        let mut c = s.clone();
        c.footprint_mb = 2;
        push(c);
        let mut c = s.clone();
        c.footprint_mb = (s.footprint_mb / 2).max(2);
        push(c);
    }

    // Simpler platform knobs, one at a time.
    if s.capacity_pages.is_some() {
        let mut c = s.clone();
        c.capacity_pages = None;
        push(c);
    }
    if s.striped {
        let mut c = s.clone();
        c.striped = false;
        push(c);
    }
    if s.large_pages {
        let mut c = s.clone();
        c.large_pages = false;
        push(c);
    }
    if s.lanes_per_gpu > 1 {
        let mut c = s.clone();
        c.lanes_per_gpu = 1;
        push(c);
    }
    if s.counter_threshold != 256 {
        let mut c = s.clone();
        c.counter_threshold = 256;
        push(c);
    }
    out
}

/// Drops fault events that name GPUs outside a shrunk `gpu_count`.
fn restrict_plan(plan: &mut FaultPlan, gpu_count: usize) {
    let fits = |g: u8| (g as usize) < gpu_count;
    plan.link_down.retain(|l| fits(l.a) && fits(l.b));
    plan.flaky.retain(|w| fits(w.a) && fits(w.b));
    plan.ecc.retain(|e| fits(e.gpu));
    debug_assert!(plan.validate_for(gpu_count).is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_strictly_smaller_and_valid() {
        for seed in 0..50u64 {
            let s = Scenario::generate(seed);
            for c in candidates(&s) {
                assert_ne!(c, s, "candidate equals its parent");
                assert!(c.gpu_count >= 1);
                assert!(c.max_phases >= 1);
                assert!(c.footprint_mb >= 2);
                assert!(
                    c.fault_plan.validate_for(c.gpu_count).is_ok(),
                    "invalid candidate plan for {}",
                    c.summary()
                );
            }
        }
    }

    #[test]
    fn restrict_plan_drops_only_out_of_range_events() {
        let mut plan =
            FaultPlan::parse("seed:1,down:0-3@1,down:0-1@0,flaky:1-2@0-2:1/4,ecc:3@1x1,ecc:0@0x1")
                .expect("parse");
        restrict_plan(&mut plan, 2);
        assert_eq!(plan.link_down.len(), 1);
        assert!(plan.flaky.is_empty());
        assert_eq!(plan.ecc.len(), 1);
        assert_eq!(plan.ecc[0].gpu, 0);
    }
}
