//! Kill-resilient fuzz sweeps: a journaled session resumed partway must
//! (a) skip every case the journal already adjudicates, (b) never
//! re-dispatch an adjudicated case, and (c) end in a report that is
//! byte-identical to an uninterrupted run — at any worker count.
//!
//! The partial journal here is crafted deliberately (full run, then a
//! rewritten journal holding only a prefix of its adjudications) so the
//! "kill point" is exact; the CLI e2e test covers the real-SIGKILL path.

use std::path::PathBuf;

use oasis_engine::journal::{recover, JournalRecord, JournalWriter};
use oasis_fuzz::{report_json, run_fuzz, FuzzOptions};

const MASTER_SEED: u64 = 0xFA57;
const CASES: u64 = 5;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-fuzz-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn opts(journal: Option<PathBuf>, resume_sweep: bool, jobs: usize) -> FuzzOptions {
    let mut o = FuzzOptions::new(MASTER_SEED, CASES);
    o.jobs = jobs;
    o.journal = journal;
    o.resume_sweep = resume_sweep;
    o
}

/// Renders the report minus the one wall-clock line.
fn deterministic_json(o: &FuzzOptions) -> String {
    let report = run_fuzz(o).expect("fuzz run");
    report_json(o, &report)
        .lines()
        .filter(|l| !l.contains("elapsed_secs"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn resuming_a_partial_journal_skips_done_cases_and_matches_byte_for_byte() {
    let dir = temp_dir();

    // Reference: the same sweep with no journal at all.
    let reference = deterministic_json(&opts(None, false, 1));

    // Full journaled run, to harvest genuine adjudication payloads.
    let full_path = dir.join("full.jnl");
    std::fs::remove_file(&full_path).ok();
    let full_json = deterministic_json(&opts(Some(full_path.clone()), false, 2));
    assert_eq!(
        reference, full_json,
        "journaling must not change the report"
    );
    let full = recover(&full_path).expect("recover full journal");
    assert_eq!(full.adjudicated.len(), CASES as usize);
    assert!(!full.interrupted);

    // Craft the "killed" journal: Begin + the first 2 adjudications + a
    // clean Interrupted trailer, exactly what a drained sweep leaves.
    let partial_path = dir.join("partial.jnl");
    std::fs::remove_file(&partial_path).ok();
    let mut w =
        JournalWriter::create(&partial_path, full.tag, &full.label).expect("create partial");
    for (&id, adj) in full.adjudicated.iter().take(2) {
        w.dispatched(id, 1).expect("dispatched");
        w.adjudicated(id, adj.outcome, adj.attempts, &adj.payload)
            .expect("adjudicated");
    }
    w.interrupted(2).expect("trailer");
    drop(w);

    // Resume at a *different* worker count: the report must still be
    // byte-identical to the uninterrupted serial reference.
    let resume_opts = opts(Some(partial_path.clone()), true, 3);
    let report = run_fuzz(&resume_opts).expect("resumed run");
    assert_eq!(report.resumed_cases, 2, "two cases came from the journal");
    assert!(!report.interrupted);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    let resumed_json = report_json(&resume_opts, &report)
        .lines()
        .filter(|l| !l.contains("elapsed_secs"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(reference, resumed_json, "resume changed the report");

    // No duplicate dispatch: once a case id is adjudicated in the journal,
    // no later Dispatched record may name it.
    let after = recover(&partial_path).expect("recover resumed journal");
    assert_eq!(after.adjudicated.len(), CASES as usize);
    let mut adjudicated = std::collections::BTreeSet::new();
    for event in &after.events {
        match event {
            JournalRecord::Adjudicated { job_id, .. } => {
                adjudicated.insert(*job_id);
            }
            JournalRecord::Dispatched { job_id, .. } => {
                assert!(
                    !adjudicated.contains(job_id),
                    "case {job_id} was re-dispatched after adjudication"
                );
            }
            _ => {}
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_a_fully_adjudicated_journal_runs_nothing_new() {
    let dir = temp_dir();
    let path = dir.join("complete.jnl");
    std::fs::remove_file(&path).ok();
    let reference = deterministic_json(&opts(None, false, 1));
    deterministic_json(&opts(Some(path.clone()), false, 1));

    let dispatches_before = recover(&path)
        .expect("recover")
        .events
        .iter()
        .filter(|e| matches!(e, JournalRecord::Dispatched { .. }))
        .count();
    let resume_opts = opts(Some(path.clone()), true, 2);
    let report = run_fuzz(&resume_opts).expect("resumed run");
    assert_eq!(report.resumed_cases, CASES);
    let resumed_json = report_json(&resume_opts, &report)
        .lines()
        .filter(|l| !l.contains("elapsed_secs"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(reference, resumed_json);
    // The journal gained no new Dispatched records: there was nothing to do.
    let dispatches_after = recover(&path)
        .expect("recover")
        .events
        .iter()
        .filter(|e| matches!(e, JournalRecord::Dispatched { .. }))
        .count();
    assert_eq!(dispatches_before, dispatches_after);

    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_with_the_wrong_parameters_is_a_typed_refusal() {
    let dir = temp_dir();
    let path = dir.join("tagged.jnl");
    std::fs::remove_file(&path).ok();
    deterministic_json(&opts(Some(path.clone()), false, 1));

    // Same journal, different case count → different sweep tag → error,
    // not a silently wrong merge.
    let mut wrong = FuzzOptions::new(MASTER_SEED, CASES + 1);
    wrong.journal = Some(path.clone());
    wrong.resume_sweep = true;
    let err = run_fuzz(&wrong).expect_err("tag mismatch must refuse");
    assert!(err.contains("journal"), "{err}");

    std::fs::remove_file(&path).ok();
}
