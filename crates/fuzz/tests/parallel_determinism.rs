//! Deterministic fan-out: the fuzz report's content must not depend on
//! the worker count.
//!
//! This is the in-tree, debug-profile-sized version of the CI gate
//! (`scripts/ci.sh` runs the full 50-case release-binary comparison at
//! `--jobs 1/4/8` and `cmp`s the JSON): a handful of cases through the
//! real differential oracle, serial vs parallel, asserting byte-identical
//! rendered reports once the one wall-clock line is dropped.

use oasis_fuzz::{report_json, run_fuzz, FuzzOptions};

/// Renders the report and strips the only nondeterministic line.
fn deterministic_json(opts: &FuzzOptions) -> String {
    let report = run_fuzz(opts).expect("unjournaled run cannot fail");
    assert_eq!(report.cases_run, opts.cases, "all cases must run");
    report_json(opts, &report)
        .lines()
        .filter(|l| !l.contains("elapsed_secs"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn same_seed_sweep_is_byte_identical_across_worker_counts() {
    let mk = |jobs: usize| {
        let mut opts = FuzzOptions::new(0xFA57, 3);
        opts.jobs = jobs;
        opts
    };
    let serial = deterministic_json(&mk(1));
    let three = deterministic_json(&mk(3));
    assert_eq!(serial, three, "--jobs 3 diverged from serial");
    assert!(serial.contains("\"violations\": 0"), "{serial}");
    assert!(serial.contains("\"job_failures\": 0"), "{serial}");
}

#[test]
fn a_generous_time_budget_does_not_break_jobs_independence() {
    // Under a time budget the dispatch-wave size is a constant, never
    // derived from the worker count — so as long as the budget doesn't
    // expire, the report stays byte-identical across --jobs. (Regression:
    // the wave size once scaled with `jobs`, which made `cases_run` —
    // and so the whole report — depend on the worker count whenever a
    // budget was set.)
    let mk = |jobs: usize| {
        let mut opts = FuzzOptions::new(0xFA57, 3);
        opts.jobs = jobs;
        opts.time_budget = Some(std::time::Duration::from_secs(3600));
        opts
    };
    let serial = deterministic_json(&mk(1));
    let parallel = deterministic_json(&mk(4));
    assert_eq!(serial, parallel, "budgeted --jobs 4 diverged from serial");
}
