//! Meta-test: the fuzzer must catch a real (planted) bug.
//!
//! The `oasis-uvm` crate exposes a test-only flag that disables the local
//! PTE invalidation when an owned page is evicted to host — exactly the
//! kind of subtle coherence bug the fuzzer exists to find (the evicting
//! GPU keeps a stale mapping while ownership moves to Host). With the flag
//! on, a short fuzzing session must find a violating scenario, shrink it
//! to a small repro, and save it to a corpus the replay path then catches.
//!
//! This is the one place the flag is ever set. The guard struct clears it
//! even if an assertion fails, and this file is its own test binary with a
//! single test, so no parallel test sees the mutated simulator.

use oasis_fuzz::corpus;
use oasis_fuzz::{check, run_fuzz, FuzzOptions};
use oasis_uvm::test_flags;

/// RAII plant: sets the bug flag, clears it on drop (including panic).
struct PlantedBug;

impl PlantedBug {
    fn plant() -> PlantedBug {
        test_flags::set_skip_evict_invalidation(true);
        PlantedBug
    }
}

impl Drop for PlantedBug {
    fn drop(&mut self) {
        test_flags::set_skip_evict_invalidation(false);
    }
}

/// Master seed for the session. Chosen (by the ignored scan below) so the
/// planted bug is hit within the first few cases, keeping the test fast.
const MASTER_SEED: u64 = 3;

#[test]
fn fuzzer_catches_shrinks_and_remembers_a_planted_eviction_bug() {
    let corpus_dir = std::env::temp_dir().join(format!("oasis-fuzz-meta-{}", std::process::id()));

    let failure = {
        let _bug = PlantedBug::plant();
        let mut opts = FuzzOptions::new(MASTER_SEED, 10);
        opts.corpus_dir = Some(corpus_dir.clone());
        let report = run_fuzz(&opts).expect("unjournaled run cannot fail");
        report
            .failure
            .expect("planted eviction bug must be caught within 10 cases")
        // _bug drops here: simulator is correct again.
    };

    // The shrinker must reach a genuinely small repro.
    let s = &failure.shrunk;
    assert!(
        s.gpu_count <= 2,
        "shrunk repro should need <= 2 GPUs: {}",
        s.summary()
    );
    assert!(
        s.max_phases <= 2,
        "shrunk repro should need <= 2 kernels: {}",
        s.summary()
    );
    let fault_events =
        s.fault_plan.link_down.len() + s.fault_plan.flaky.len() + s.fault_plan.ecc.len();
    assert!(
        fault_events <= 1,
        "shrunk repro should need <= 1 fault event: {}",
        s.summary()
    );

    // The repro was persisted, and the corpus round-trip is faithful.
    let path = failure
        .corpus_path
        .expect("repro must be written to corpus");
    let text = std::fs::read_to_string(&path).expect("corpus file readable");
    let (loaded, oracle) = corpus::from_json(&text).expect("corpus file parses");
    assert_eq!(&loaded, s, "corpus round-trip changed the scenario");
    assert_eq!(oracle, Some(failure.violation.kind));

    // Replaying the corpus file catches the bug while planted...
    {
        let _bug = PlantedBug::plant();
        let v = check(&loaded).expect("replay must reproduce the planted bug");
        assert_eq!(v.kind, failure.violation.kind);
    }
    // ...and is clean once the bug is fixed (flag cleared).
    assert!(
        check(&loaded).is_none(),
        "repro must pass on the fixed simulator"
    );

    std::fs::remove_dir_all(&corpus_dir).ok();
}

/// One-off scan used to pick `MASTER_SEED`; kept (ignored) so the constant
/// can be re-derived if the generator ever changes. Run with:
/// `cargo test -q -p oasis-fuzz --release --test planted_bug -- --ignored --nocapture`
#[test]
#[ignore = "seed-scan helper, not a regression test"]
fn scan_for_master_seed() {
    let _bug = PlantedBug::plant();
    for master in 0..32u64 {
        let report = run_fuzz(&FuzzOptions::new(master, 5)).expect("unjournaled run cannot fail");
        if let Some(f) = report.failure {
            println!(
                "master={master} case={} kind={} shrunk: {}",
                f.case_index,
                f.violation.kind,
                f.shrunk.summary()
            );
        } else {
            println!("master={master} clean after {} cases", report.cases_run);
        }
    }
}
