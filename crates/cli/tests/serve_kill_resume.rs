//! End-to-end crash durability for the sweep server, against the real
//! `oasis-sim` binary over real sockets:
//!
//! * SIGKILL (uncatchable, mid-sweep) the server, restart it on the same
//!   state directory → re-collected results byte-identical to a server
//!   that was never interrupted.
//! * Jobs adjudicated before the kill are answered from the
//!   content-addressed cache with zero recompute (`serve.cache_hits`).
//! * SIGTERM → graceful drain: the server exits with the resumable code
//!   75 and its message names the state directory to resume with.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_oasis-sim");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A running `oasis-sim serve` child plus the port it announced.
struct Server {
    child: Child,
    port: u16,
}

fn spawn_server(state: &Path) -> Server {
    let mut child = Command::new(BIN)
        .args(["serve", "--port", "0", "--jobs", "2"])
        .args(["--serve-state", state.to_str().expect("utf-8")])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn server");
    // The listening line is printed (and flushed) the moment the socket
    // is live; everything after it arrives only at exit.
    let stdout = child.stdout.take().expect("server stdout");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("server prints a listening line")
        .expect("read listening line");
    let port: u16 = line
        .rsplit(':')
        .next()
        .and_then(|p| p.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparsable listening line: {line}"));
    Server { child, port }
}

fn submit(port: u16, seed: &str, cases: &str) -> std::process::Output {
    Command::new(BIN)
        .args(["submit", "--port", &port.to_string()])
        .args(["--seed", seed, "--cases", cases, "--submit-stats"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("run submit")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The `serve.cache_hits` value from a submit's `--submit-stats` stderr.
fn cache_hits(out: &std::process::Output) -> u64 {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .find_map(|l| {
            l.strip_prefix("submit: stat serve.cache_hits = ")
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn wait_with_deadline(mut child: Child, limit: Duration) -> std::process::Output {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("wait_with_output"),
            None if start.elapsed() > limit => {
                child.kill().ok();
                panic!("child did not exit within {limit:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn sigkill_mid_sweep_then_restart_is_byte_identical_and_cached() {
    let reference_state = temp_dir("serve-ref");
    let crash_state = temp_dir("serve-crash");

    // Reference: an uninterrupted server adjudicates the whole batch.
    let reference = {
        let mut server = spawn_server(&reference_state);
        let out = submit(server.port, "99", "4");
        assert!(out.status.success(), "reference submit failed: {out:?}");
        server.child.kill().ok();
        server.child.wait().expect("reap reference server");
        stdout_of(&out)
    };
    assert_eq!(
        reference.lines().count(),
        4,
        "one result line per submission:\n{reference}"
    );

    // Crash run, phase 1: adjudicate a small warm-up batch (so the cache
    // provably holds entries), then SIGKILL the server while a second
    // batch is mid-sweep.
    let mut server = spawn_server(&crash_state);
    let warm = submit(server.port, "7", "2");
    assert!(warm.status.success(), "warm-up submit failed: {warm:?}");
    let warm_stdout = stdout_of(&warm);

    let inflight = Command::new(BIN)
        .args(["submit", "--port", &server.port.to_string()])
        .args(["--seed", "99", "--cases", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn in-flight submit");
    // Give admission (journaled write-ahead) a moment, then kill -9: no
    // drain, no trailer, results unsent.
    std::thread::sleep(Duration::from_millis(1500));
    server.child.kill().ok();
    server.child.wait().expect("reap killed server");
    // The orphaned client must fail fast (EOF), not hang.
    let orphan = wait_with_deadline(inflight, Duration::from_secs(60));
    assert!(
        !orphan.status.success(),
        "client should report the lost server"
    );

    let journal = crash_state.join("serve.jnl");
    assert!(journal.exists(), "journal must survive the kill");

    // Phase 2: restart on the same state directory.
    let mut server = spawn_server(&crash_state);

    // (a) The warm-up batch is answered from the cache: byte-identical
    // stdout and a nonzero cache-hit counter — zero recompute.
    let warm_again = submit(server.port, "7", "2");
    assert!(
        warm_again.status.success(),
        "cached submit failed: {warm_again:?}"
    );
    assert_eq!(
        warm_stdout,
        stdout_of(&warm_again),
        "cached results diverged from the originals"
    );
    assert!(
        cache_hits(&warm_again) >= 2,
        "expected >= 2 cache hits, stderr: {}",
        String::from_utf8_lossy(&warm_again.stderr)
    );

    // (b) The killed batch converges to the reference bytes: jobs that
    // adjudicated before the kill come from the backfilled cache, the
    // rest are re-run from the journaled queue.
    let recollected = submit(server.port, "99", "4");
    assert!(
        recollected.status.success(),
        "re-collect failed: {recollected:?}"
    );
    assert_eq!(
        reference,
        stdout_of(&recollected),
        "post-crash results diverged from an uninterrupted server's"
    );

    server.child.kill().ok();
    server.child.wait().expect("reap server");
    std::fs::remove_dir_all(&reference_state).ok();
    std::fs::remove_dir_all(&crash_state).ok();
}

#[test]
#[cfg(unix)]
fn sigterm_drains_to_exit_75_with_resume_hint() {
    let state = temp_dir("serve-drain");
    let server = spawn_server(&state);

    // A served job proves the socket works before the drain.
    let out = submit(server.port, "3", "1");
    assert!(out.status.success(), "submit failed: {out:?}");

    let _ = Command::new("kill")
        .args(["-TERM", &server.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    let out = wait_with_deadline(server.child, Duration::from_secs(120));
    assert_eq!(
        out.status.code(),
        Some(75),
        "graceful drain must exit EX_TEMPFAIL; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--serve-state"),
        "drain message must say how to resume: {stderr}"
    );

    // The journal carries the clean Interrupted trailer.
    let rec = oasis_engine::journal::recover(&state.join("serve.jnl")).expect("journal recovers");
    assert!(rec.interrupted, "drained journal ends in a clean trailer");

    std::fs::remove_dir_all(&state).ok();
}
