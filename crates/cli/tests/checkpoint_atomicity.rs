//! Kill-at-any-byte durability for checkpoint writes.
//!
//! `--checkpoint-every` publishes checkpoints through
//! `oasis_engine::fsio::atomic_write`: serialize to a hidden same-directory
//! temp file, fsync, rename over the target. This test enumerates every
//! observable crash state of that protocol — the temp file cut at each
//! byte offset while the previous checkpoint still occupies the target —
//! and proves the *visible* checkpoint is always complete and resumable.

use oasis_cli::Cli;
use oasis_engine::failpoint::{arm_thread, FailPlan, FaultKind};
use oasis_engine::fsio::{atomic_write, staging_path};
use oasis_mgpu::System;
use oasis_workloads::generate;

fn parse(argv: &[&str]) -> Cli {
    Cli::parse(argv.iter().map(|s| s.to_string())).expect("parse")
}

#[test]
fn a_kill_at_any_byte_offset_leaves_a_resumable_checkpoint() {
    let cli = parse(&["run", "--app", "C2D", "--footprint-mb", "4"]);
    let trace = generate(cli.app, &cli.workload_params());
    let config = cli.system_config();

    // The "previous" checkpoint (epoch 2) and the "next" one (epoch 4),
    // exactly as `run --checkpoint-every 2` would produce them.
    let checkpoint_at = |epoch: u64| {
        let mut sys = System::new(config.clone(), &cli.policy);
        sys.run_prefix(&trace, epoch).expect("prefix run");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        buf
    };
    let old = checkpoint_at(2);
    let new = checkpoint_at(4);
    assert_ne!(old, new, "the two checkpoints must differ");

    let dir = std::env::temp_dir().join(format!("oasis-ckpt-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("C2D-oasis.ckpt");
    atomic_write(&path, &old).expect("publish old checkpoint");

    // Kill states during the write of `new`: the temp holds 0..=len bytes,
    // the target still holds `old`. Every offset (strided to ~256 probes,
    // plus the exact edges) must leave the visible file resumable.
    let stride = (new.len() / 256).max(1);
    let mut offsets: Vec<usize> = (0..=new.len()).step_by(stride).collect();
    offsets.extend([0, 1, new.len().saturating_sub(1), new.len()]);
    offsets.sort_unstable();
    offsets.dedup();
    for (i, &cut) in offsets.iter().enumerate() {
        let tmp = staging_path(&path).expect("staging path");
        std::fs::write(&tmp, &new[..cut]).expect("write torn temp");

        let visible = std::fs::read(&path).expect("target readable");
        assert_eq!(visible, old, "cut at {cut}: target was modified mid-write");
        let mut sys =
            System::resume(&mut visible.as_slice(), &trace).expect("old checkpoint resumes");
        assert_eq!(sys.next_epoch(), 2, "cut at {cut}");
        // Deserializing every offset is cheap; driving the resumed system
        // to completion is not, so finish the run at the edges and a
        // handful of interior probes only.
        if i % 64 == 0 || cut == 0 || cut == new.len() {
            sys.run(&trace).expect("resumed run finishes");
        }

        std::fs::remove_file(&tmp).ok();
    }

    // The rename completed: only now does the new checkpoint become
    // visible — whole, never partially.
    atomic_write(&path, &new).expect("publish new checkpoint");
    let visible = std::fs::read(&path).expect("target readable");
    assert_eq!(visible, new);
    let sys = System::resume(&mut visible.as_slice(), &trace).expect("new checkpoint resumes");
    assert_eq!(sys.next_epoch(), 4);

    std::fs::remove_dir_all(&dir).ok();
}

/// Injected storage faults on every `atomic_write` leg — create, write
/// (outright and torn), fsync, rename — must error with the site name,
/// keep the previous checkpoint both visible and resumable, and remove
/// the staging temp file. This is the fault-driven twin of the
/// kill-at-any-byte test above: there the process dies mid-protocol, here
/// the OS says no and the process must clean up after itself.
#[test]
fn injected_write_faults_leave_the_old_checkpoint_and_no_temp() {
    let cli = parse(&["run", "--app", "C2D", "--footprint-mb", "4"]);
    let trace = generate(cli.app, &cli.workload_params());
    let config = cli.system_config();
    let checkpoint_at = |epoch: u64| {
        let mut sys = System::new(config.clone(), &cli.policy);
        sys.run_prefix(&trace, epoch).expect("prefix run");
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf).expect("checkpoint");
        buf
    };
    let old = checkpoint_at(2);
    let new = checkpoint_at(4);

    let dir = std::env::temp_dir().join(format!("oasis-ckpt-inject-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("C2D-oasis.ckpt");
    atomic_write(&path, &old).expect("publish old checkpoint");

    let cells = [
        ("fsio.create", FaultKind::Eio),
        ("fsio.create", FaultKind::Enospc),
        ("fsio.write", FaultKind::Eio),
        ("fsio.write", FaultKind::Enospc),
        ("fsio.write", FaultKind::ShortWrite),
        ("fsio.write", FaultKind::TornAppend),
        ("fsio.fsync", FaultKind::FsyncFail),
        ("fsio.fsync", FaultKind::Enospc),
        ("fsio.rename", FaultKind::RenameFail),
        ("fsio.rename", FaultKind::Eio),
    ];
    for (site, kind) in cells {
        let scope = arm_thread(FailPlan::once(site, kind));
        let err = atomic_write(&path, &new).expect_err("armed publish must fail");
        assert_eq!(scope.fired(), 1, "cell {site}/{kind}");
        drop(scope);
        assert!(
            err.to_string().contains(site),
            "cell {site}/{kind}: error must name the site: {err}"
        );

        // No staging debris anywhere in the checkpoint directory.
        let strays: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "cell {site}/{kind}: {strays:?}");

        // The visible checkpoint is still the old one, byte for byte, and
        // still resumable.
        let visible = std::fs::read(&path).expect("target readable");
        assert_eq!(visible, old, "cell {site}/{kind}: target corrupted");
        let sys = System::resume(&mut visible.as_slice(), &trace).expect("old resumes");
        assert_eq!(sys.next_epoch(), 2, "cell {site}/{kind}");
    }

    // Disarmed, the same publish succeeds and the new checkpoint resumes.
    atomic_write(&path, &new).expect("clean publish");
    let visible = std::fs::read(&path).expect("target readable");
    assert_eq!(visible, new);
    let sys = System::resume(&mut visible.as_slice(), &trace).expect("new resumes");
    assert_eq!(sys.next_epoch(), 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_runs_leave_no_stray_temp_files() {
    let dir = std::env::temp_dir().join(format!("oasis-ckpt-clean-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cli = parse(&[
        "run",
        "--app",
        "C2D",
        "--footprint-mb",
        "4",
        "--checkpoint-every",
        "4",
        "--checkpoint-dir",
        dir.to_str().expect("utf-8"),
    ]);
    oasis_cli::run(&cli).expect("checkpointed run succeeds");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(
        names.iter().all(|n| n.ends_with(".ckpt")),
        "staging leftovers in checkpoint dir: {names:?}"
    );
    assert_eq!(names.len(), 2, "epochs 4 and 8: {names:?}");
    std::fs::remove_dir_all(&dir).ok();
}
