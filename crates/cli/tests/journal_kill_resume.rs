//! End-to-end kill resilience for journaled sweeps, against the real
//! `oasis-sim` binary:
//!
//! * SIGKILL (uncatchable, mid-anything) partway through `fuzz --journal`,
//!   then `--resume-sweep` → stdout byte-identical to an uninterrupted
//!   run, and the journal never re-dispatches an adjudicated case.
//! * SIGTERM → the sweep drains, writes the `Interrupted` trailer, and
//!   exits with the resumable code 75; the resume finishes the report.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use oasis_engine::journal::{recover, JournalRecord};

const BIN: &str = env!("CARGO_BIN_EXE_oasis-sim");
const SEED: &str = "7";
const CASES: &str = "8";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oasis-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn fuzz_cmd(corpus: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(["fuzz", "--seed", SEED, "--cases", CASES, "--jobs", "2"])
        .args(["--corpus-dir", corpus.to_str().expect("utf-8")])
        .arg("--json")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Stdout with the one wall-clock line removed.
fn deterministic_stdout(out: &[u8]) -> String {
    String::from_utf8_lossy(out)
        .lines()
        .filter(|l| !l.contains("elapsed_secs"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Waits up to `limit` for the child; panics (after killing it) on hang.
fn wait_with_deadline(mut child: Child, limit: Duration) -> std::process::Output {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("wait_with_output"),
            None if start.elapsed() > limit => {
                child.kill().ok();
                panic!("child did not exit within {limit:?}");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

#[test]
fn sigkill_midway_then_resume_is_byte_identical() {
    let dir = temp_dir("sigkill");
    let journal = dir.join("sweep.jnl");

    // Reference: the identical sweep, no journal, straight through.
    let straight = fuzz_cmd(&dir, &[]).output().expect("straight run");
    assert!(
        straight.status.success(),
        "straight run failed: {straight:?}"
    );
    let reference = deterministic_stdout(&straight.stdout);

    // Journaled run, SIGKILLed while cases are still in flight. If the
    // machine is so fast the sweep already finished, the test degrades to
    // resuming a complete journal — still a valid identity check.
    let mut child = fuzz_cmd(&dir, &["--journal", journal.to_str().expect("utf-8")])
        .spawn()
        .expect("spawn journaled run");
    std::thread::sleep(Duration::from_millis(2500));
    child.kill().ok(); // SIGKILL on Unix: no drain, no trailer
    child.wait().expect("reap killed child");
    assert!(journal.exists(), "journal must exist after the kill");

    // Resume: exit 0, stdout byte-identical to the uninterrupted run.
    let resumed = fuzz_cmd(
        &dir,
        &[
            "--journal",
            journal.to_str().expect("utf-8"),
            "--resume-sweep",
        ],
    )
    .output()
    .expect("resumed run");
    assert!(
        resumed.status.success(),
        "resume failed: status {:?}, stderr: {}",
        resumed.status,
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        reference,
        deterministic_stdout(&resumed.stdout),
        "resumed report diverged from the straight run"
    );

    // The journal's own history: once adjudicated, never re-dispatched.
    let rec = recover(&journal).expect("journal recovers");
    assert_eq!(rec.adjudicated.len(), 8, "all cases adjudicated in the end");
    let mut adjudicated = std::collections::BTreeSet::new();
    for event in &rec.events {
        match event {
            JournalRecord::Adjudicated { job_id, .. } => {
                adjudicated.insert(*job_id);
            }
            JournalRecord::Dispatched { job_id, .. } => assert!(
                !adjudicated.contains(job_id),
                "case {job_id} re-dispatched after adjudication"
            ),
            _ => {}
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[cfg(unix)]
fn sigterm_drains_to_exit_75_and_resume_finishes() {
    let dir = temp_dir("sigterm");
    let journal = dir.join("sweep.jnl");

    let straight = fuzz_cmd(&dir, &[]).output().expect("straight run");
    assert!(straight.status.success());
    let reference = deterministic_stdout(&straight.stdout);

    let child = fuzz_cmd(&dir, &["--journal", journal.to_str().expect("utf-8")])
        .spawn()
        .expect("spawn journaled run");
    std::thread::sleep(Duration::from_millis(2000));
    // SIGTERM via kill(1): the process should drain and exit 75. (If it
    // finished before the signal landed, it exits 0 — accept both, but
    // only the drain path asserts the trailer.)
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    let out = wait_with_deadline(child, Duration::from_secs(120));
    let code = out.status.code();
    assert!(
        code == Some(75) || code == Some(0),
        "expected drain (75) or natural finish (0), got {code:?}; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    if code == Some(75) {
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--resume-sweep"),
            "drain message must say how to resume: {stderr}"
        );
        let rec = recover(&journal).expect("journal recovers");
        assert!(rec.interrupted, "drained journal ends in a clean trailer");
        assert!(
            rec.adjudicated.len() <= 8,
            "a drain can never adjudicate more cases than the sweep has"
        );
    }

    let resumed = fuzz_cmd(
        &dir,
        &[
            "--journal",
            journal.to_str().expect("utf-8"),
            "--resume-sweep",
        ],
    )
    .output()
    .expect("resumed run");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(reference, deterministic_stdout(&resumed.stdout));

    std::fs::remove_dir_all(&dir).ok();
}
