//! Hand-rolled argument parsing (no external CLI dependency).

use std::fmt;

use oasis_core::controller::OasisConfig;
use oasis_grit::GritConfig;
use oasis_mem::types::PageSize;
use oasis_mgpu::{FaultPlan, Placement, Policy, SystemConfig};
use oasis_workloads::{App, WorkloadParams, ALL_APPS};

/// Usage text for `oasis-sim help`.
pub const USAGE: &str = "\
oasis-sim — OASIS multi-GPU page-management simulator

USAGE:
    oasis-sim <COMMAND> [OPTIONS]

COMMANDS:
    run           simulate one app under one policy and print the report
    compare       simulate one app under every policy
    characterize  print per-object access patterns of an app's trace
    inject        run the deterministic fault-injection campaign
    verify-replay checkpoint/kill/resume one app under the four core
                  policies and verify bit-identical replay
    stats         simulate with metrics on and print the top-N counter
                  and latency-histogram breakdown
    bench-smoke   run the fixed benchmark matrix, write BENCH JSON, and
                  gate on throughput regressions vs the baseline
    fuzz          property-based fuzzing: random scenarios through the
                  differential policy oracle; failures are shrunk and
                  saved as corpus repros
    serve         run the crash-durable sweep server: accept scenario
                  jobs over newline JSON on a localhost socket, schedule
                  them on the supervised pool, cache results by content
                  digest, and journal the queue so a killed server
                  resumes without losing admitted work
    submit        send scenario jobs to a running sweep server, stream
                  progress to stderr, and print one deterministic result
                  line per job
    chaos         storage-chaos audit: enumerate every failpoint site x
                  fault kind (EIO, ENOSPC, short write, fsync/rename
                  failure, torn append) against the checkpoint, journal,
                  corpus, and serve durability surfaces and assert the
                  invariant triad — no panic, no corrupt artifact read
                  back as valid, post-fault recovery byte-identical or a
                  typed error naming the site
    help          show this text

OPTIONS:
    --app <ABBR>            application: BFS C2D FFT I2C MM MT PR ST
                            LeNet VGG16 ResNet18          [default: MT]
    --policy <NAME>         on-touch | access-counter | duplication |
                            ideal | oasis | oasis-inmem | grit
                                                          [default: oasis]
    --gpus <N>              GPU count                     [default: 4]
    --footprint-mb <MB>     override the Table II footprint
    --page-size <4k|2m>     translation granularity       [default: 4k]
    --placement <host|striped>  initial page placement    [default: host]
    --oversubscribe <PCT>   cap GPU memory for PCT% oversubscription
    --fault-plan <SPEC>     schedule deterministic hardware faults:
                            comma-separated clauses  seed:<n>
                            down:<a>-<b>@<epoch> (permanent link failure)
                            flaky:<a>-<b>@<from>-<to>:<num>/<den> (CRC
                            glitch window)  ecc:<gpu>@<epoch>x<count>
                            (poison resident frames)
    --reset-threshold <N>   OASIS reset threshold         [default: 8]
    --seed <N>              workload RNG seed; for inject, the campaign's
                            master seed (same seed, same output)
    --checkpoint-every <N>  run: write a checkpoint every N epochs
    --checkpoint-dir <DIR>  where checkpoints are written  [default: .]
    --resume <FILE>         run: resume from a checkpoint file (the
                            checkpoint's config and policy win over flags)
    --digest-out <FILE>     run: write the per-epoch digest trail, one
                            0x-prefixed hex digest per line (CI cmp's
                            this against pinned golden fixtures)
    --json                  machine-readable output (run and inject)
    --trace-out <FILE>      run: write a Chrome trace_event JSON file
                            (open in chrome://tracing or Perfetto)
    --trace-cap <N>         bound the trace ring buffer to N events
                            [default: 262144 when --trace-out is given]
    --metrics               collect the metrics registry during run
    --top <N>               stats: rows per breakdown table [default: 20]
    --runs <N>              bench-smoke: runs per cell, best taken [default: 3]
    --matrix <NAME>         bench-smoke: cell matrix — full (every app x
                            the four core policies) or quick (the
                            historical C2D/MM x on-touch/oasis four
                            cells)                    [default: full]
    --bench-out <FILE>      bench-smoke: result file [default: BENCH_pr8.json]
    --baseline <FILE>       bench-smoke: baseline to gate against
                            [default: the previous --bench-out file]
    --tolerance <PCT>       bench-smoke: allowed steps/sec regression
                            [default: 25]
    --cases <N>             fuzz: scenarios to generate and check
                            [default: 100]
    --time-budget-secs <S>  fuzz: stop cleanly once S seconds have elapsed
    --corpus-dir <DIR>      fuzz: where shrunk repros are written and
                            --replay paths resolve [default: tests/corpus]
    --replay <PATH>         fuzz: re-check one saved corpus repro (or, for
                            a directory, every repro in it) instead of
                            generating scenarios
    --jobs <N>              fuzz/inject/verify-replay/bench-smoke: worker
                            threads for the supervised sweep; report
                            content is identical for any N   [default: 1]
    --journal <FILE>        fuzz/inject/verify-replay: write-ahead sweep
                            journal; every dispatch and outcome is fsync'd
                            so a killed sweep can be resumed
    --resume-sweep          with --journal: skip the jobs the journal
                            already adjudicates and finish the rest; the
                            final report is byte-identical to an
                            uninterrupted run
    --job-deadline-secs <S> per-job wall-clock deadline: a job past it is
                            recorded as a typed timed-out failure and its
                            worker is respawned
    --job-attempts <N>      attempts per job (deterministic doubling
                            backoff between tries) before it counts as
                            failed                           [default: 1]
    --port <N>              serve: TCP port on 127.0.0.1 (0 binds an
                            ephemeral port and announces it);
                            submit: the server's port         [default: 0]
    --serve-state <DIR>     serve: state directory for the queue journal
                            and result cache; restart with the same
                            directory to resume   [default: .oasis-serve]
    --queue-depth <N>       serve: admission cap on pending + in-flight
                            jobs; beyond it submissions get a typed
                            overload rejection             [default: 256]
    --conn-inflight <N>     serve: per-connection cap on unresolved
                            jobs                            [default: 64]
    --idle-timeout-secs <S> serve: close connections idle this long with
                            no jobs in flight               [default: 30]
    --submit-stats          submit: request the server's counter snapshot
                            after the batch and print it to stderr
    --submit-timeout-secs <S> submit: overall deadline for the batch
                                                           [default: 600]
    --retries <N>           submit: extra attempts after a transient
                            connect failure or a typed overloaded
                            rejection (0 = fail fast)       [default: 0]
    --retry-backoff-ms <MS> submit: first retry delay; doubles after
                            every attempt                 [default: 100]
    --chaos-filter <SUBSTR> chaos: run only the matrix cells whose
                            workload/site/kind label contains SUBSTR

EXAMPLES:
    oasis-sim run --app MM --policy duplication
    oasis-sim compare --app ST --gpus 8
    oasis-sim characterize --app C2D
    oasis-sim run --app BFS --policy oasis --oversubscribe 150 --json
    oasis-sim run --app MT --checkpoint-every 2 --checkpoint-dir /tmp/ckpt
    oasis-sim run --app MT --resume /tmp/ckpt/MT-oasis-epoch2.ckpt
    oasis-sim inject --seed 42 --json
    oasis-sim verify-replay --app MT --footprint-mb 4
    oasis-sim run --app C2D --policy oasis --trace-out trace.json
    oasis-sim stats --app MM --policy oasis --top 15
    oasis-sim bench-smoke --runs 3 --tolerance 25
    oasis-sim fuzz --seed 7 --cases 500 --time-budget-secs 60 --jobs 8
    oasis-sim fuzz --replay tests/corpus --jobs 4
    oasis-sim fuzz --replay tests/corpus/repro-0000000000000000-none.json
    oasis-sim inject --seed 42 --jobs 4 --job-deadline-secs 120
    oasis-sim fuzz --seed 7 --cases 200 --journal sweep.jnl
    oasis-sim fuzz --seed 7 --cases 200 --journal sweep.jnl --resume-sweep
    oasis-sim serve --port 7077 --serve-state /tmp/sweepd --jobs 4
    oasis-sim submit --port 7077 --seed 7 --cases 20 --submit-stats
    oasis-sim submit --port 7077 --replay tests/corpus
    oasis-sim submit --port 7077 --seed 7 --retries 3 --retry-backoff-ms 250
    oasis-sim chaos --jobs 4
    oasis-sim chaos --chaos-filter journal.append
    oasis-sim run --app C2D --policy oasis \\
        --fault-plan seed:7,down:0-1@2,ecc:0@3x2
";

/// Subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// One app, one policy.
    Run,
    /// One app, every policy.
    Compare,
    /// Trace characterization.
    Characterize,
    /// Deterministic fault-injection campaign.
    Inject,
    /// Checkpoint/kill/resume determinism audit over the core policies.
    VerifyReplay,
    /// Metrics-registry breakdown of one run.
    Stats,
    /// Fixed benchmark matrix with a throughput-regression gate.
    BenchSmoke,
    /// Property-based fuzzing with the differential policy oracle.
    Fuzz,
    /// Crash-durable sweep server over a localhost socket.
    Serve,
    /// Client: send scenario jobs to a running sweep server.
    Submit,
    /// Storage-chaos audit over the failpoint site x fault-kind matrix.
    Chaos,
    /// Usage text.
    Help,
}

/// A parsed invocation.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Application under test.
    pub app: App,
    /// Policy for `run`.
    pub policy: Policy,
    /// GPU count.
    pub gpus: usize,
    /// Footprint override (MB).
    pub footprint_mb: Option<u64>,
    /// Page size.
    pub page_size: PageSize,
    /// Initial placement.
    pub placement: Placement,
    /// Oversubscription percentage (>100) if set.
    pub oversubscribe: Option<u64>,
    /// Deterministic hardware-fault schedule, if any.
    pub fault_plan: Option<FaultPlan>,
    /// OASIS reset threshold.
    pub reset_threshold: u8,
    /// Workload seed override.
    pub seed: Option<u64>,
    /// Write a checkpoint every N epochs during `run`.
    pub checkpoint_every: Option<u64>,
    /// Directory checkpoints are written into.
    pub checkpoint_dir: Option<String>,
    /// Resume `run` from this checkpoint file.
    pub resume: Option<String>,
    /// Write the per-epoch digest trail to this file after `run`
    /// (one `0x%016x` line per epoch — the CI determinism gate `cmp`s
    /// this against pinned fixtures).
    pub digest_out: Option<String>,
    /// JSON output.
    pub json: bool,
    /// Write a Chrome trace_event JSON file after `run`.
    pub trace_out: Option<String>,
    /// Ring-tracer capacity override (events).
    pub trace_cap: Option<usize>,
    /// Collect the metrics registry during `run`.
    pub metrics: bool,
    /// Rows per `stats` breakdown table.
    pub top: usize,
    /// Runs per `bench-smoke` cell (best is kept).
    pub runs: usize,
    /// `bench-smoke` matrix selection: "full" (all apps x core policies)
    /// or "quick" (the historical C2D/MM x on-touch/oasis four cells).
    pub matrix: String,
    /// `bench-smoke` result file.
    pub bench_out: Option<String>,
    /// Explicit `bench-smoke` baseline file.
    pub baseline: Option<String>,
    /// Allowed `bench-smoke` steps/sec regression, percent.
    pub tolerance: u64,
    /// `fuzz`: scenarios to generate and check.
    pub cases: u64,
    /// `fuzz`: wall-clock budget in seconds, if bounded.
    pub time_budget_secs: Option<u64>,
    /// `fuzz`: directory for shrunk repros (written on failure, read by
    /// relative `--replay` paths).
    pub corpus_dir: Option<String>,
    /// `fuzz`: replay this saved corpus repro (file) or whole corpus
    /// (directory) instead of generating.
    pub replay: Option<String>,
    /// Worker threads for supervised sweeps (fuzz, inject, verify-replay,
    /// bench-smoke). 1 keeps the classic serial behavior.
    pub jobs: usize,
    /// Per-job wall-clock deadline for supervised sweeps, in seconds.
    pub job_deadline_secs: Option<u64>,
    /// Attempts per supervised job before it counts as failed.
    pub job_attempts: u32,
    /// Write-ahead sweep journal for fuzz/inject/verify-replay.
    pub journal: Option<String>,
    /// Resume a journaled sweep instead of starting it over.
    pub resume_sweep: bool,
    /// `serve`: TCP port to bind (0 = ephemeral); `submit`: the server's
    /// port.
    pub port: u16,
    /// `serve`: state directory for the queue journal and result cache.
    pub serve_state: Option<String>,
    /// `serve`: admission cap on pending + in-flight jobs.
    pub queue_depth: usize,
    /// `serve`: per-connection cap on unresolved jobs.
    pub conn_inflight: usize,
    /// `serve`: idle-connection cutoff, seconds.
    pub idle_timeout_secs: u64,
    /// `submit`: request and print the server's counter snapshot.
    pub submit_stats: bool,
    /// `submit`: overall batch deadline, seconds.
    pub submit_timeout_secs: u64,
    /// `submit`: extra attempts after a transient connect failure or a
    /// typed overloaded rejection. 0 keeps the classic fail-fast shape.
    pub retries: u32,
    /// `submit`: first retry delay in milliseconds; doubles per attempt.
    pub retry_backoff_ms: u64,
    /// `chaos`: run only the cells whose label contains this substring.
    pub chaos_filter: Option<String>,
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Every selectable policy, for `compare`.
pub fn all_policies() -> Vec<Policy> {
    vec![
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
        Policy::oasis_inmem(),
        Policy::grit(),
        Policy::Ideal,
    ]
}

fn parse_policy(name: &str, reset_threshold: u8) -> Result<Policy, ParseError> {
    let oasis_cfg = OasisConfig {
        reset_threshold,
        ..OasisConfig::default()
    };
    Ok(match name {
        "on-touch" => Policy::OnTouch,
        "access-counter" => Policy::AccessCounter,
        "duplication" => Policy::Duplication,
        "ideal" => Policy::Ideal,
        "oasis" => Policy::Oasis(oasis_cfg),
        "oasis-inmem" => Policy::OasisInMem(oasis_cfg),
        "grit" => Policy::Grit(GritConfig::default()),
        other => return Err(ParseError(format!("unknown policy '{other}'"))),
    })
}

impl Cli {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first invalid argument.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Cli, ParseError> {
        let mut args = argv.into_iter().peekable();
        let command = match args.next().as_deref() {
            Some("run") => Command::Run,
            Some("compare") => Command::Compare,
            Some("characterize") => Command::Characterize,
            Some("inject") => Command::Inject,
            Some("verify-replay") => Command::VerifyReplay,
            Some("stats") => Command::Stats,
            Some("bench-smoke") => Command::BenchSmoke,
            Some("fuzz") => Command::Fuzz,
            Some("serve") => Command::Serve,
            Some("submit") => Command::Submit,
            Some("chaos") => Command::Chaos,
            Some("help") | Some("--help") | Some("-h") | None => Command::Help,
            Some(other) => return Err(ParseError(format!("unknown command '{other}'"))),
        };
        let mut cli = Cli {
            command,
            app: App::Mt,
            policy: Policy::oasis(),
            gpus: 4,
            footprint_mb: None,
            page_size: PageSize::Small4K,
            placement: Placement::Host,
            oversubscribe: None,
            fault_plan: None,
            reset_threshold: 8,
            seed: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
            digest_out: None,
            json: false,
            trace_out: None,
            trace_cap: None,
            metrics: false,
            top: 20,
            runs: 3,
            matrix: "full".to_string(),
            bench_out: None,
            baseline: None,
            tolerance: 25,
            cases: 100,
            time_budget_secs: None,
            corpus_dir: None,
            replay: None,
            jobs: 1,
            job_deadline_secs: None,
            job_attempts: 1,
            journal: None,
            resume_sweep: false,
            port: 0,
            serve_state: None,
            queue_depth: 256,
            conn_inflight: 64,
            idle_timeout_secs: 30,
            submit_stats: false,
            submit_timeout_secs: 600,
            retries: 0,
            retry_backoff_ms: 100,
            chaos_filter: None,
        };
        let mut policy_name: Option<String> = None;
        while let Some(flag) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .ok_or_else(|| ParseError(format!("{flag} needs a value")))
            };
            match flag.as_str() {
                "--app" => {
                    let v = value("--app")?;
                    cli.app = *ALL_APPS
                        .iter()
                        .find(|a| a.abbr().eq_ignore_ascii_case(&v))
                        .ok_or_else(|| ParseError(format!("unknown app '{v}'")))?;
                }
                "--policy" => policy_name = Some(value("--policy")?),
                "--gpus" => {
                    cli.gpus = value("--gpus")?
                        .parse()
                        .map_err(|e| ParseError(format!("--gpus: {e}")))?;
                    if cli.gpus == 0 {
                        return Err(ParseError("--gpus must be positive".into()));
                    }
                }
                "--footprint-mb" => {
                    cli.footprint_mb = Some(
                        value("--footprint-mb")?
                            .parse()
                            .map_err(|e| ParseError(format!("--footprint-mb: {e}")))?,
                    );
                }
                "--page-size" => {
                    cli.page_size = match value("--page-size")?.as_str() {
                        "4k" | "4K" | "4096" => PageSize::Small4K,
                        "2m" | "2M" => PageSize::Large2M,
                        v => return Err(ParseError(format!("unknown page size '{v}'"))),
                    };
                }
                "--placement" => {
                    cli.placement = match value("--placement")?.as_str() {
                        "host" => Placement::Host,
                        "striped" => Placement::Striped,
                        v => return Err(ParseError(format!("unknown placement '{v}'"))),
                    };
                }
                "--oversubscribe" => {
                    let pct: u64 = value("--oversubscribe")?
                        .parse()
                        .map_err(|e| ParseError(format!("--oversubscribe: {e}")))?;
                    if pct <= 100 {
                        return Err(ParseError("--oversubscribe must exceed 100".into()));
                    }
                    cli.oversubscribe = Some(pct);
                }
                "--fault-plan" => {
                    let spec = value("--fault-plan")?;
                    cli.fault_plan = Some(
                        FaultPlan::parse(&spec)
                            .map_err(|e| ParseError(format!("--fault-plan: {e}")))?,
                    );
                }
                "--reset-threshold" => {
                    cli.reset_threshold = value("--reset-threshold")?
                        .parse()
                        .map_err(|e| ParseError(format!("--reset-threshold: {e}")))?;
                }
                "--seed" => {
                    cli.seed = Some(
                        value("--seed")?
                            .parse()
                            .map_err(|e| ParseError(format!("--seed: {e}")))?,
                    );
                }
                "--checkpoint-every" => {
                    let every: u64 = value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| ParseError(format!("--checkpoint-every: {e}")))?;
                    if every == 0 {
                        return Err(ParseError("--checkpoint-every must be positive".into()));
                    }
                    cli.checkpoint_every = Some(every);
                }
                "--checkpoint-dir" => cli.checkpoint_dir = Some(value("--checkpoint-dir")?),
                "--resume" => cli.resume = Some(value("--resume")?),
                "--digest-out" => cli.digest_out = Some(value("--digest-out")?),
                "--json" => cli.json = true,
                "--trace-out" => cli.trace_out = Some(value("--trace-out")?),
                "--trace-cap" => {
                    let cap: usize = value("--trace-cap")?
                        .parse()
                        .map_err(|e| ParseError(format!("--trace-cap: {e}")))?;
                    if cap == 0 {
                        return Err(ParseError("--trace-cap must be positive".into()));
                    }
                    cli.trace_cap = Some(cap);
                }
                "--metrics" => cli.metrics = true,
                "--top" => {
                    cli.top = value("--top")?
                        .parse()
                        .map_err(|e| ParseError(format!("--top: {e}")))?;
                    if cli.top == 0 {
                        return Err(ParseError("--top must be positive".into()));
                    }
                }
                "--runs" => {
                    cli.runs = value("--runs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--runs: {e}")))?;
                    if cli.runs == 0 {
                        return Err(ParseError("--runs must be positive".into()));
                    }
                }
                "--cases" => {
                    cli.cases = value("--cases")?
                        .parse()
                        .map_err(|e| ParseError(format!("--cases: {e}")))?;
                    if cli.cases == 0 {
                        return Err(ParseError("--cases must be positive".into()));
                    }
                }
                "--time-budget-secs" => {
                    let secs: u64 = value("--time-budget-secs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--time-budget-secs: {e}")))?;
                    if secs == 0 {
                        return Err(ParseError("--time-budget-secs must be positive".into()));
                    }
                    cli.time_budget_secs = Some(secs);
                }
                "--corpus-dir" => cli.corpus_dir = Some(value("--corpus-dir")?),
                "--replay" => cli.replay = Some(value("--replay")?),
                "--jobs" => {
                    cli.jobs = value("--jobs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--jobs: {e}")))?;
                    if cli.jobs == 0 {
                        return Err(ParseError("--jobs must be positive".into()));
                    }
                }
                "--job-deadline-secs" => {
                    let secs: u64 = value("--job-deadline-secs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--job-deadline-secs: {e}")))?;
                    if secs == 0 {
                        return Err(ParseError("--job-deadline-secs must be positive".into()));
                    }
                    cli.job_deadline_secs = Some(secs);
                }
                "--job-attempts" => {
                    cli.job_attempts = value("--job-attempts")?
                        .parse()
                        .map_err(|e| ParseError(format!("--job-attempts: {e}")))?;
                    if cli.job_attempts == 0 {
                        return Err(ParseError("--job-attempts must be positive".into()));
                    }
                }
                "--journal" => cli.journal = Some(value("--journal")?),
                "--resume-sweep" => cli.resume_sweep = true,
                "--port" => {
                    cli.port = value("--port")?
                        .parse()
                        .map_err(|e| ParseError(format!("--port: {e}")))?;
                }
                "--serve-state" => cli.serve_state = Some(value("--serve-state")?),
                "--queue-depth" => {
                    cli.queue_depth = value("--queue-depth")?
                        .parse()
                        .map_err(|e| ParseError(format!("--queue-depth: {e}")))?;
                    if cli.queue_depth == 0 {
                        return Err(ParseError("--queue-depth must be positive".into()));
                    }
                }
                "--conn-inflight" => {
                    cli.conn_inflight = value("--conn-inflight")?
                        .parse()
                        .map_err(|e| ParseError(format!("--conn-inflight: {e}")))?;
                    if cli.conn_inflight == 0 {
                        return Err(ParseError("--conn-inflight must be positive".into()));
                    }
                }
                "--idle-timeout-secs" => {
                    let secs: u64 = value("--idle-timeout-secs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--idle-timeout-secs: {e}")))?;
                    if secs == 0 {
                        return Err(ParseError("--idle-timeout-secs must be positive".into()));
                    }
                    cli.idle_timeout_secs = secs;
                }
                "--submit-stats" => cli.submit_stats = true,
                "--retries" => {
                    cli.retries = value("--retries")?
                        .parse()
                        .map_err(|e| ParseError(format!("--retries: {e}")))?;
                }
                "--retry-backoff-ms" => {
                    cli.retry_backoff_ms = value("--retry-backoff-ms")?
                        .parse()
                        .map_err(|e| ParseError(format!("--retry-backoff-ms: {e}")))?;
                }
                "--chaos-filter" => cli.chaos_filter = Some(value("--chaos-filter")?),
                "--submit-timeout-secs" => {
                    let secs: u64 = value("--submit-timeout-secs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--submit-timeout-secs: {e}")))?;
                    if secs == 0 {
                        return Err(ParseError("--submit-timeout-secs must be positive".into()));
                    }
                    cli.submit_timeout_secs = secs;
                }
                "--matrix" => {
                    let v = value("--matrix")?;
                    match v.as_str() {
                        "full" | "quick" => cli.matrix = v,
                        other => {
                            return Err(ParseError(format!(
                                "unknown matrix '{other}' (expected 'full' or 'quick')"
                            )))
                        }
                    }
                }
                "--bench-out" => cli.bench_out = Some(value("--bench-out")?),
                "--baseline" => cli.baseline = Some(value("--baseline")?),
                "--tolerance" => {
                    cli.tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| ParseError(format!("--tolerance: {e}")))?;
                    if cli.tolerance >= 100 {
                        return Err(ParseError("--tolerance must be below 100".into()));
                    }
                }
                other => return Err(ParseError(format!("unknown option '{other}'"))),
            }
        }
        if let Some(name) = policy_name {
            cli.policy = parse_policy(&name, cli.reset_threshold)?;
        } else {
            cli.policy = parse_policy("oasis", cli.reset_threshold)?;
        }
        if cli.resume_sweep && cli.journal.is_none() {
            return Err(ParseError("--resume-sweep requires --journal".into()));
        }
        if cli.command == Command::Submit && cli.port == 0 {
            return Err(ParseError(
                "submit needs --port (the port the server announced)".into(),
            ));
        }
        // Validate here (flags arrive in any order) so a bad plan is a
        // parse error instead of a panic when the fabric is built.
        if let Some(plan) = cli.fault_plan.as_ref() {
            plan.validate_for(cli.gpus)
                .map_err(|e| ParseError(format!("--fault-plan: {e}")))?;
        }
        Ok(cli)
    }

    /// The workload parameters this invocation selects.
    pub fn workload_params(&self) -> WorkloadParams {
        let mut p = WorkloadParams::paper(self.app, self.gpus);
        if let Some(mb) = self.footprint_mb {
            p.footprint_mb = mb;
        }
        if let Some(seed) = self.seed {
            p.seed = seed;
        }
        p
    }

    /// The system configuration this invocation selects. The observability
    /// knobs follow the command: `--trace-out` turns tracing on (at
    /// `--trace-cap` or a roomy default), and `stats` implies `--metrics`.
    pub fn system_config(&self) -> SystemConfig {
        let trace_capacity = match (self.trace_cap, &self.trace_out) {
            (Some(cap), _) => cap,
            (None, Some(_)) => 1 << 18,
            (None, None) => 0,
        };
        let mut c = SystemConfig {
            gpu_count: self.gpus,
            page_size: self.page_size,
            placement: self.placement,
            trace_capacity,
            metrics: self.metrics || self.command == Command::Stats,
            fault_plan: self.fault_plan.clone().unwrap_or_default(),
            ..SystemConfig::default()
        };
        if let Some(pct) = self.oversubscribe {
            c = c.with_oversubscription(self.workload_params().footprint_bytes(), pct);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Cli, ParseError> {
        Cli::parse(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&["run"]).unwrap();
        assert_eq!(c.command, Command::Run);
        assert_eq!(c.app, App::Mt);
        assert_eq!(c.gpus, 4);
        assert_eq!(c.policy.name(), "oasis");
        assert!(!c.json);
    }

    #[test]
    fn full_flag_set() {
        let c = parse(&[
            "run",
            "--app",
            "bfs",
            "--policy",
            "grit",
            "--gpus",
            "8",
            "--footprint-mb",
            "12",
            "--page-size",
            "2m",
            "--placement",
            "striped",
            "--oversubscribe",
            "150",
            "--seed",
            "7",
            "--json",
        ])
        .unwrap();
        assert_eq!(c.app, App::Bfs);
        assert_eq!(c.policy.name(), "grit");
        assert_eq!(c.gpus, 8);
        assert_eq!(c.footprint_mb, Some(12));
        assert_eq!(c.page_size, PageSize::Large2M);
        assert_eq!(c.placement, Placement::Striped);
        assert_eq!(c.oversubscribe, Some(150));
        assert_eq!(c.seed, Some(7));
        assert!(c.json);
        assert!(c.system_config().gpu_capacity_pages.is_some());
    }

    #[test]
    fn reset_threshold_feeds_oasis_config() {
        let c = parse(&["run", "--policy", "oasis", "--reset-threshold", "32"]).unwrap();
        match c.policy {
            Policy::Oasis(cfg) => assert_eq!(cfg.reset_threshold, 32),
            _ => panic!("expected oasis"),
        }
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["frobnicate"]).unwrap_err().0.contains("command"));
        assert!(parse(&["run", "--app", "NOPE"])
            .unwrap_err()
            .0
            .contains("app"));
        assert!(parse(&["run", "--policy", "magic"])
            .unwrap_err()
            .0
            .contains("policy"));
        assert!(parse(&["run", "--gpus"]).unwrap_err().0.contains("value"));
        assert!(parse(&["run", "--gpus", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["run", "--oversubscribe", "90"])
            .unwrap_err()
            .0
            .contains("exceed 100"));
    }

    #[test]
    fn fault_plan_parses_validates_and_shapes_the_config() {
        let c = parse(&["run", "--fault-plan", "seed:7,down:0-1@2,ecc:0@3x2"]).unwrap();
        let plan = c.fault_plan.as_ref().expect("plan parsed");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.link_down.len(), 1);
        assert_eq!(c.system_config().fault_plan, *plan);

        // No flag: the config carries the empty (zero-fault) plan.
        assert!(parse(&["run"])
            .unwrap()
            .system_config()
            .fault_plan
            .is_empty());

        assert!(parse(&["run", "--fault-plan", "down:0-0@1"])
            .unwrap_err()
            .0
            .contains("--fault-plan"));
        // Naming a GPU the system doesn't have is a parse error, whatever
        // the flag order.
        let err = parse(&["run", "--fault-plan", "down:0-5@1", "--gpus", "4"]).unwrap_err();
        assert!(err.0.contains("GPU 5"), "{err}");
        assert!(parse(&["run", "--gpus", "8", "--fault-plan", "down:0-5@1"]).is_ok());
    }

    #[test]
    fn no_args_means_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let c = parse(&[
            "run",
            "--checkpoint-every",
            "2",
            "--checkpoint-dir",
            "/tmp/ckpt",
        ])
        .unwrap();
        assert_eq!(c.checkpoint_every, Some(2));
        assert_eq!(c.checkpoint_dir.as_deref(), Some("/tmp/ckpt"));
        let c = parse(&["run", "--resume", "state.ckpt"]).unwrap();
        assert_eq!(c.resume.as_deref(), Some("state.ckpt"));
        assert!(parse(&["run", "--checkpoint-every", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
    }

    #[test]
    fn verify_replay_is_a_command() {
        assert_eq!(
            parse(&["verify-replay"]).unwrap().command,
            Command::VerifyReplay
        );
    }

    #[test]
    fn observability_flags_parse_and_shape_the_config() {
        let c = parse(&["run", "--trace-out", "t.json", "--metrics"]).unwrap();
        assert_eq!(c.trace_out.as_deref(), Some("t.json"));
        let cfg = c.system_config();
        assert_eq!(cfg.trace_capacity, 1 << 18, "trace-out implies tracing");
        assert!(cfg.metrics);

        let c = parse(&["run", "--trace-out", "t.json", "--trace-cap", "512"]).unwrap();
        assert_eq!(c.system_config().trace_capacity, 512);

        // No observability flags: everything stays dark.
        let dark = parse(&["run"]).unwrap().system_config();
        assert_eq!(dark.trace_capacity, 0);
        assert!(!dark.metrics);

        // `stats` implies metrics without the flag.
        let stats = parse(&["stats", "--top", "5"]).unwrap();
        assert_eq!(stats.command, Command::Stats);
        assert_eq!(stats.top, 5);
        assert!(stats.system_config().metrics);

        assert!(parse(&["run", "--trace-cap", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
    }

    #[test]
    fn fuzz_flags_parse() {
        let c = parse(&[
            "fuzz",
            "--seed",
            "7",
            "--cases",
            "500",
            "--time-budget-secs",
            "60",
            "--corpus-dir",
            "corp",
            "--json",
        ])
        .unwrap();
        assert_eq!(c.command, Command::Fuzz);
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.cases, 500);
        assert_eq!(c.time_budget_secs, Some(60));
        assert_eq!(c.corpus_dir.as_deref(), Some("corp"));
        assert!(c.json);

        let c = parse(&["fuzz", "--replay", "tests/corpus/r.json"]).unwrap();
        assert_eq!(c.replay.as_deref(), Some("tests/corpus/r.json"));
        assert_eq!(c.cases, 100, "default case count");

        assert!(parse(&["fuzz", "--cases", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["fuzz", "--time-budget-secs", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
    }

    #[test]
    fn supervised_sweep_flags_parse() {
        let c = parse(&[
            "fuzz",
            "--jobs",
            "8",
            "--job-deadline-secs",
            "120",
            "--job-attempts",
            "3",
        ])
        .unwrap();
        assert_eq!(c.jobs, 8);
        assert_eq!(c.job_deadline_secs, Some(120));
        assert_eq!(c.job_attempts, 3);

        // Defaults keep the classic serial, one-shot, unbounded shape.
        let d = parse(&["inject"]).unwrap();
        assert_eq!(d.jobs, 1);
        assert_eq!(d.job_deadline_secs, None);
        assert_eq!(d.job_attempts, 1);

        for bad in [
            ["fuzz", "--jobs", "0"],
            ["fuzz", "--job-deadline-secs", "0"],
            ["fuzz", "--job-attempts", "0"],
        ] {
            assert!(parse(&bad).unwrap_err().0.contains("positive"), "{bad:?}");
        }
    }

    #[test]
    fn journal_flags_parse_and_resume_requires_a_journal() {
        let c = parse(&["fuzz", "--journal", "sweep.jnl"]).unwrap();
        assert_eq!(c.journal.as_deref(), Some("sweep.jnl"));
        assert!(!c.resume_sweep);

        let c = parse(&["inject", "--journal", "c.jnl", "--resume-sweep"]).unwrap();
        assert!(c.resume_sweep);

        // Flag order must not matter for the pairing check.
        assert!(parse(&["fuzz", "--resume-sweep", "--journal", "s.jnl"]).is_ok());
        let err = parse(&["fuzz", "--resume-sweep"]).unwrap_err();
        assert!(err.0.contains("--journal"), "{err}");
    }

    #[test]
    fn serve_and_submit_flags_parse() {
        let c = parse(&[
            "serve",
            "--port",
            "7077",
            "--serve-state",
            "/tmp/sweepd",
            "--queue-depth",
            "8",
            "--conn-inflight",
            "2",
            "--idle-timeout-secs",
            "5",
            "--jobs",
            "4",
        ])
        .unwrap();
        assert_eq!(c.command, Command::Serve);
        assert_eq!(c.port, 7077);
        assert_eq!(c.serve_state.as_deref(), Some("/tmp/sweepd"));
        assert_eq!(c.queue_depth, 8);
        assert_eq!(c.conn_inflight, 2);
        assert_eq!(c.idle_timeout_secs, 5);
        assert_eq!(c.jobs, 4);

        // serve defaults: ephemeral port, production-shaped limits.
        let d = parse(&["serve"]).unwrap();
        assert_eq!(d.port, 0);
        assert_eq!(d.queue_depth, 256);
        assert_eq!(d.conn_inflight, 64);
        assert_eq!(d.idle_timeout_secs, 30);

        let s = parse(&[
            "submit",
            "--port",
            "7077",
            "--seed",
            "7",
            "--cases",
            "20",
            "--submit-stats",
        ])
        .unwrap();
        assert_eq!(s.command, Command::Submit);
        assert_eq!(s.port, 7077);
        assert!(s.submit_stats);
        assert_eq!(s.submit_timeout_secs, 600);

        // submit without a port cannot connect anywhere: parse error.
        let err = parse(&["submit", "--seed", "7"]).unwrap_err();
        assert!(err.0.contains("--port"), "{err}");

        for bad in [
            ["serve", "--queue-depth", "0"],
            ["serve", "--conn-inflight", "0"],
            ["serve", "--idle-timeout-secs", "0"],
        ] {
            assert!(parse(&bad).unwrap_err().0.contains("positive"), "{bad:?}");
        }
    }

    #[test]
    fn chaos_and_retry_flags_parse() {
        let c = parse(&["chaos", "--jobs", "4", "--chaos-filter", "journal"]).unwrap();
        assert_eq!(c.command, Command::Chaos);
        assert_eq!(c.jobs, 4);
        assert_eq!(c.chaos_filter.as_deref(), Some("journal"));
        assert_eq!(parse(&["chaos"]).unwrap().chaos_filter, None);

        let s = parse(&[
            "submit",
            "--port",
            "7077",
            "--retries",
            "3",
            "--retry-backoff-ms",
            "250",
        ])
        .unwrap();
        assert_eq!(s.retries, 3);
        assert_eq!(s.retry_backoff_ms, 250);

        // Defaults keep the classic fail-fast client.
        let d = parse(&["submit", "--port", "7077"]).unwrap();
        assert_eq!(d.retries, 0);
        assert_eq!(d.retry_backoff_ms, 100);

        assert!(parse(&["submit", "--port", "7077", "--retries", "x"])
            .unwrap_err()
            .0
            .contains("--retries"));
    }

    #[test]
    fn digest_out_and_matrix_parse() {
        let c = parse(&["run", "--digest-out", "trail.txt"]).unwrap();
        assert_eq!(c.digest_out.as_deref(), Some("trail.txt"));
        assert_eq!(parse(&["run"]).unwrap().digest_out, None);

        let c = parse(&["bench-smoke", "--matrix", "quick"]).unwrap();
        assert_eq!(c.matrix, "quick");
        assert_eq!(parse(&["bench-smoke"]).unwrap().matrix, "full");
        let err = parse(&["bench-smoke", "--matrix", "giant"]).unwrap_err();
        assert!(err.0.contains("matrix"), "{err}");
    }

    #[test]
    fn bench_smoke_flags_parse() {
        let c = parse(&[
            "bench-smoke",
            "--runs",
            "2",
            "--bench-out",
            "B.json",
            "--baseline",
            "old.json",
            "--tolerance",
            "10",
        ])
        .unwrap();
        assert_eq!(c.command, Command::BenchSmoke);
        assert_eq!(c.runs, 2);
        assert_eq!(c.bench_out.as_deref(), Some("B.json"));
        assert_eq!(c.baseline.as_deref(), Some("old.json"));
        assert_eq!(c.tolerance, 10);
        assert!(parse(&["bench-smoke", "--tolerance", "100"])
            .unwrap_err()
            .0
            .contains("below 100"));
        assert!(parse(&["bench-smoke", "--runs", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
    }
}
