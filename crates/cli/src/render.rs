//! Report rendering: aligned text and minimal hand-rolled JSON.

use std::fmt::Write as _;

use oasis_mem::types::PageSize;
use oasis_mgpu::characterize::{profile, RwPattern, Scope, SharePattern};
use oasis_mgpu::{InjectionOutcome, RunReport};
use oasis_workloads::Trace;

/// Human-readable single-run report.
pub fn report_text(r: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} under {}", r.app, r.policy);
    let _ = writeln!(
        out,
        "  simulated time     {:>12.3} ms",
        r.total_time.as_us() / 1000.0
    );
    let _ = writeln!(out, "  kernel launches    {:>12}", r.phases);
    let _ = writeln!(out, "  transactions       {:>12}", r.accesses);
    let _ = writeln!(
        out,
        "  local / remote     {:>12} / {}",
        r.local_accesses, r.remote_accesses
    );
    let _ = writeln!(out, "  far faults         {:>12}", r.uvm.far_faults);
    let _ = writeln!(out, "  protection faults  {:>12}", r.uvm.protection_faults);
    let _ = writeln!(out, "  migrations         {:>12}", r.uvm.migrations);
    let _ = writeln!(out, "  counter migrations {:>12}", r.uvm.counter_migrations);
    let _ = writeln!(out, "  duplications       {:>12}", r.uvm.duplications);
    let _ = writeln!(out, "  collapses          {:>12}", r.uvm.collapses);
    let _ = writeln!(out, "  remote maps        {:>12}", r.uvm.remote_maps);
    let _ = writeln!(out, "  evictions          {:>12}", r.uvm.evictions);
    let _ = writeln!(out, "  thrash pins        {:>12}", r.uvm.thrash_pins);
    let _ = writeln!(
        out,
        "  NVLink / PCIe      {:>9} KB / {} KB",
        r.nvlink_bytes / 1024,
        r.pcie_bytes / 1024
    );
    // Hardware-fault recovery lines appear only when a fault plan did
    // something; the zero-fault report stays unchanged.
    let f = &r.faults;
    if f.link_faults + f.reroutes + f.crc_retries > 0 || r.uvm.ecc_quarantines > 0 {
        let _ = writeln!(
            out,
            "  hw degradation     {:>12} link fault(s), {} reroutes ({} KB), {} CRC retries",
            f.link_faults,
            f.reroutes,
            f.rerouted_bytes / 1024,
            f.crc_retries
        );
        let _ = writeln!(
            out,
            "  ECC recovery       {:>12} quarantines, {} fault retries",
            r.uvm.ecc_quarantines, r.uvm.fault_retries
        );
    }
    let (h1, m1) = r.l1_tlb;
    let (h2, m2) = r.l2_tlb;
    let _ = writeln!(
        out,
        "  L1 TLB hit rate    {:>11.1}%   L2 TLB hit rate {:>5.1}%",
        pct(h1, h1 + m1),
        pct(h2, h2 + m2)
    );
    let i = &r.instrumentation;
    let _ = writeln!(
        out,
        "  wall clock         {:>12.3} ms   ({} steps retired)",
        i.wall_clock_us as f64 / 1000.0,
        i.retired_steps
    );
    if i.checkpoint_write_us > 0 || i.checkpoint_restore_us > 0 {
        let _ = writeln!(
            out,
            "  checkpoint I/O     {:>12.3} ms write / {:.3} ms restore",
            i.checkpoint_write_us as f64 / 1000.0,
            i.checkpoint_restore_us as f64 / 1000.0
        );
    }
    out
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64 * 100.0
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable single-run report.
pub fn report_json(r: &RunReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"app\": {},", json_str(&r.app));
    let _ = writeln!(out, "  \"policy\": {},", json_str(&r.policy));
    let _ = writeln!(out, "  \"total_time_us\": {:.3},", r.total_time.as_us());
    let _ = writeln!(out, "  \"phases\": {},", r.phases);
    let _ = writeln!(out, "  \"accesses\": {},", r.accesses);
    let _ = writeln!(out, "  \"local_accesses\": {},", r.local_accesses);
    let _ = writeln!(out, "  \"remote_accesses\": {},", r.remote_accesses);
    let _ = writeln!(out, "  \"far_faults\": {},", r.uvm.far_faults);
    let _ = writeln!(out, "  \"protection_faults\": {},", r.uvm.protection_faults);
    let _ = writeln!(out, "  \"migrations\": {},", r.uvm.migrations);
    let _ = writeln!(
        out,
        "  \"counter_migrations\": {},",
        r.uvm.counter_migrations
    );
    let _ = writeln!(out, "  \"duplications\": {},", r.uvm.duplications);
    let _ = writeln!(out, "  \"collapses\": {},", r.uvm.collapses);
    let _ = writeln!(out, "  \"remote_maps\": {},", r.uvm.remote_maps);
    let _ = writeln!(out, "  \"evictions\": {},", r.uvm.evictions);
    let _ = writeln!(out, "  \"thrash_pins\": {},", r.uvm.thrash_pins);
    let _ = writeln!(out, "  \"nvlink_bytes\": {},", r.nvlink_bytes);
    let _ = writeln!(out, "  \"pcie_bytes\": {},", r.pcie_bytes);
    let _ = writeln!(out, "  \"link_faults\": {},", r.faults.link_faults);
    let _ = writeln!(out, "  \"reroutes\": {},", r.faults.reroutes);
    let _ = writeln!(out, "  \"rerouted_bytes\": {},", r.faults.rerouted_bytes);
    let _ = writeln!(out, "  \"crc_retries\": {},", r.faults.crc_retries);
    let _ = writeln!(out, "  \"ecc_quarantines\": {},", r.uvm.ecc_quarantines);
    let _ = writeln!(out, "  \"fault_retries\": {},", r.uvm.fault_retries);
    let _ = writeln!(
        out,
        "  \"policy_mix\": [{}, {}, {}],",
        r.policy_mix[0], r.policy_mix[1], r.policy_mix[2]
    );
    let i = &r.instrumentation;
    let _ = writeln!(out, "  \"wall_clock_us\": {},", i.wall_clock_us);
    let _ = writeln!(out, "  \"retired_steps\": {},", i.retired_steps);
    let _ = writeln!(out, "  \"checkpoint_write_us\": {},", i.checkpoint_write_us);
    let _ = writeln!(
        out,
        "  \"checkpoint_restore_us\": {},",
        i.checkpoint_restore_us
    );
    // Digests exceed 2^53, so emit them as hex strings to stay exact in
    // every JSON consumer.
    let digests: Vec<String> = r
        .digest_trail
        .iter()
        .map(|d| format!("\"{d:#018x}\""))
        .collect();
    let _ = writeln!(out, "  \"digest_trail\": [{}]", digests.join(", "));
    out.push('}');
    out
}

/// Metrics-registry breakdown: top-N counters by value, every latency
/// histogram with bucket-resolution quantiles, and the per-epoch rollup
/// table. Deterministic: ties in counter value break on key order.
pub fn stats_text(r: &RunReport, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} under {} — metrics breakdown", r.app, r.policy);

    let mut counters: Vec<(&str, u64)> = r.metrics.counters().collect();
    counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total = counters.len();
    let _ = writeln!(out, "\ncounters (top {} of {total}):", top.min(total));
    for (key, v) in counters.iter().take(top) {
        let _ = writeln!(out, "  {key:<40} {v:>16}");
    }

    let _ = writeln!(
        out,
        "\nlatency histograms:\n  {:<28} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "key", "count", "mean(ns)", "p50(ns)", "p99(ns)", "max(ns)"
    );
    for (key, h) in r.metrics.histograms().take(top) {
        let _ = writeln!(
            out,
            "  {key:<28} {:>10} {:>12.1} {:>10} {:>10} {:>10}",
            h.count(),
            h.mean_ns(),
            h.quantile_ns(0.5),
            h.quantile_ns(0.99),
            h.max_ns()
        );
    }

    if !r.epoch_rollups.is_empty() {
        let _ = writeln!(
            out,
            "\nper-epoch rollups:\n  {:<6} {:>12} {:>10} {:>8} {:>10} {:>10}",
            "epoch", "sim(ms)", "accesses", "faults", "migrations", "evictions"
        );
        for e in &r.epoch_rollups {
            let _ = writeln!(
                out,
                "  {:<6} {:>12.3} {:>10} {:>8} {:>10} {:>10}",
                e.epoch,
                e.sim_time.as_us() / 1000.0,
                e.accesses,
                e.uvm.total_faults(),
                e.uvm.migrations + e.uvm.counter_migrations,
                e.uvm.evictions
            );
        }
    }
    if !r.trace_events.is_empty() {
        let _ = writeln!(
            out,
            "\ntrace: {} events retained (dropped count under trace.dropped)",
            r.trace_events.len()
        );
    }
    out
}

/// Machine-readable fault-injection campaign: one JSON object per line per
/// outcome (JSON Lines; seeds as hex strings to stay exact beyond 2^53).
pub fn inject_json(outcomes: &[InjectionOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let _ = writeln!(
            out,
            "{{\"kind\": {}, \"seed\": \"{:#018x}\", \"ok\": {}, \"line\": {}}}",
            json_str(o.kind.name()),
            o.seed,
            o.ok,
            json_str(&o.line)
        );
    }
    out
}

/// Side-by-side comparison of several runs (same app).
pub fn comparison_text(reports: &[RunReport]) -> String {
    let mut out = String::new();
    let base = reports
        .iter()
        .find(|r| r.policy == "on-touch")
        .or_else(|| reports.first())
        .expect("at least one report");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>9} {:>12} {:>12}",
        "policy", "time(ms)", "speedup", "page-faults", "remote-acc"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:<16} {:>12.3} {:>8.2}x {:>12} {:>12}",
            r.policy,
            r.total_time.as_us() / 1000.0,
            r.speedup_over(base),
            r.uvm.total_faults(),
            r.remote_accesses
        );
    }
    out
}

/// Per-object characterization of a trace.
pub fn characterization_text(trace: &Trace, page: PageSize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} objects, {} MB, {} launches, {} transactions ({page} pages)",
        trace.app,
        trace.objects.len(),
        trace.footprint_bytes() >> 20,
        trace.phases.len(),
        trace.total_accesses()
    );
    let profiles = profile(trace, page, Scope::Whole);
    let total: u64 = profiles.iter().map(|p| p.accesses).sum();
    for p in profiles.iter().filter(|p| p.accesses > 0) {
        let share = match p.share_pattern() {
            Some(SharePattern::Private) => "private",
            Some(SharePattern::Shared) => "shared",
            None => "untouched",
        };
        let rw = match p.rw_pattern() {
            Some(RwPattern::ReadOnly) => "read-only",
            Some(RwPattern::WriteOnly) => "write-only",
            Some(RwPattern::RwMix) => "rw-mix",
            None => "untouched",
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>8} pages  {:<8} {:<10} {:>5.1}% of accesses{}",
            p.name,
            p.pages,
            share,
            rw,
            pct(p.accesses, total),
            if p.is_non_uniform() {
                "  [non-uniform]"
            } else {
                ""
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn pct_handles_zero_denominator() {
        assert_eq!(pct(5, 0), 0.0);
        assert_eq!(pct(1, 2), 50.0);
    }
}
