//! Argument parsing and report formatting for the `oasis-sim` CLI.
//!
//! Kept as a library so the parsing and rendering logic is unit-testable;
//! `main.rs` is a thin shell around [`run`].

pub mod args;
pub mod render;

use oasis_mgpu::{run_campaign, simulate};
use oasis_workloads::generate;

pub use args::{Cli, Command, ParseError};

/// Executes a parsed invocation, returning the text to print.
pub fn run(cli: &Cli) -> String {
    match &cli.command {
        Command::Run => {
            let trace = generate(cli.app, &cli.workload_params());
            let report = simulate(&cli.system_config(), cli.policy.clone(), &trace);
            if cli.json {
                render::report_json(&report)
            } else {
                render::report_text(&report)
            }
        }
        Command::Compare => {
            let trace = generate(cli.app, &cli.workload_params());
            let config = cli.system_config();
            let policies = args::all_policies();
            let mut reports = Vec::new();
            for p in policies {
                reports.push(simulate(&config, p, &trace));
            }
            render::comparison_text(&reports)
        }
        Command::Characterize => {
            let trace = generate(cli.app, &cli.workload_params());
            render::characterization_text(&trace, cli.system_config().page_size)
        }
        Command::Inject => {
            let seed = cli.seed.unwrap_or(0);
            let outcomes = run_campaign(seed);
            let survivors = outcomes.iter().filter(|o| o.ok).count();
            let mut out = format!("fault-injection campaign, master seed {seed:#018x}\n\n");
            for o in &outcomes {
                out.push_str(&o.line);
                out.push('\n');
            }
            out.push_str(&format!(
                "\n{survivors}/{} scenarios completed with invariants intact; \
                 replay any line with its printed seed\n",
                outcomes.len()
            ));
            out
        }
        Command::Help => args::USAGE.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Cli {
        Cli::parse(argv.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn run_produces_report_text() {
        let out = run(&parse(&["run", "--app", "MT", "--footprint-mb", "4"]));
        assert!(out.contains("simulated time"));
        assert!(out.contains("far faults"));
    }

    #[test]
    fn run_json_is_wellformed_enough() {
        let out = run(&parse(&[
            "run",
            "--app",
            "MT",
            "--footprint-mb",
            "4",
            "--json",
        ]));
        assert!(out.trim_start().starts_with('{'));
        assert!(out.contains("\"total_time_us\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn compare_lists_all_policies() {
        let out = run(&parse(&["compare", "--app", "MT", "--footprint-mb", "4"]));
        for name in ["on-touch", "access-counter", "duplication", "oasis", "grit"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn characterize_lists_objects() {
        let out = run(&parse(&[
            "characterize",
            "--app",
            "MM",
            "--footprint-mb",
            "4",
        ]));
        assert!(out.contains("MM_A"));
        assert!(out.contains("read-only"));
    }

    #[test]
    fn inject_is_deterministic_and_covers_all_kinds() {
        let a = run(&parse(&["inject", "--seed", "9"]));
        let b = run(&parse(&["inject", "--seed", "9"]));
        assert_eq!(a, b, "same seed, same campaign output");
        for kind in [
            "truncate-trace",
            "out-of-range-access",
            "capacity-crunch",
            "corrupt-counters",
            "policy-flip",
        ] {
            assert!(a.contains(kind), "missing {kind} in:\n{a}");
        }
        assert!(a.contains("invariants intact"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&parse(&["help"]));
        assert!(out.contains("USAGE"));
    }
}
