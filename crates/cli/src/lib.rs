//! Argument parsing and report formatting for the `oasis-sim` CLI.
//!
//! Kept as a library so the parsing and rendering logic is unit-testable;
//! `main.rs` is a thin shell around [`run`].

pub mod args;
mod chaos;
pub mod render;
pub mod signal;
mod smoke;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::{self, Write as _};
use std::fs::File;
use std::sync::Arc;

use oasis_engine::journal::{AdjudicatedOutcome, Adjudication, JournalWriter};
use oasis_engine::pool::{
    run_sweep, run_sweep_controlled, Job, JobError, JobOutcome, PoolConfig, StopHandle,
    SweepControl,
};
use oasis_mgpu::{run_campaign_supervised, simulate, CampaignConfig, Policy, System};
use oasis_workloads::{generate, Trace};

pub use args::{Cli, Command, ParseError};

/// A failed invocation, split by exit contract.
///
/// The full exit-code taxonomy the binary commits to:
///
/// | exit | meaning                                                      |
/// |------|--------------------------------------------------------------|
/// | 0    | success — the command ran to completion with every gate held |
/// | 1    | [`CliError::Failure`]: bad arguments, a failed simulation or |
/// |      | gate, a violated chaos invariant, a degraded serve run (the  |
/// |      | admission journal broke mid-run), or a `submit` batch whose  |
/// |      | retry budget was exhausted                                   |
/// | 75   | [`CliError::Interrupted`] (`EX_TEMPFAIL`): a journaled sweep |
/// |      | or serve run drained cleanly on SIGINT/SIGTERM and can be    |
/// |      | finished — resume with `--resume-sweep` / `--serve-state`    |
///
/// Typed *per-job* rejections (`overloaded`, `unavailable`,
/// `connection-inflight`) are not process exits: they arrive as result
/// lines, and `submit` maps any unresolved job onto exit 1 after its
/// `--retries` budget is spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Ordinary failure: message on stderr, exit code 1.
    Failure(String),
    /// A journaled sweep drained cleanly on SIGINT/SIGTERM and can be
    /// finished with `--resume-sweep`: exit code 75 (`EX_TEMPFAIL`, the
    /// sysexits "temporary failure, retry later" convention).
    Interrupted(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Failure(msg) | CliError::Interrupted(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

/// The supervised-pool shape this invocation selects (`--jobs`,
/// `--job-deadline-secs`, `--job-attempts`).
fn pool_config(cli: &Cli) -> PoolConfig {
    PoolConfig {
        workers: cli.jobs.max(1),
        deadline: cli.job_deadline_secs.map(std::time::Duration::from_secs),
        max_attempts: cli.job_attempts.max(1),
        ..PoolConfig::default()
    }
}

/// Runs `run` with optional checkpoint/resume plumbing and returns the
/// finished report, or a human-readable failure.
fn run_with_checkpoints(cli: &Cli, trace: &Trace) -> Result<oasis_mgpu::RunReport, String> {
    let mut sys = match &cli.resume {
        Some(path) => {
            let mut f = File::open(path).map_err(|e| format!("--resume {path}: {e}"))?;
            System::resume(&mut f, trace).map_err(|e| format!("--resume {path}: {e}"))?
        }
        None => System::new(cli.system_config(), &cli.policy),
    };
    if let Some(every) = cli.checkpoint_every {
        let dir = cli.checkpoint_dir.as_deref().unwrap_or(".");
        let total = trace.phases.len() as u64;
        let mut at = sys.next_epoch();
        while at < total {
            at = (at + every).min(total);
            sys.run_prefix(trace, at).map_err(|e| e.to_string())?;
            if at < total {
                let path = format!("{dir}/{}-{}-epoch{at}.ckpt", trace.app, sys.policy().name());
                // Serialize to memory, then publish atomically: a kill during
                // the write can never leave a torn checkpoint at `path`.
                let mut buf = Vec::new();
                sys.checkpoint(&mut buf)
                    .map_err(|e| format!("checkpoint {path}: {e}"))?;
                oasis_engine::atomic_write(std::path::Path::new(&path), &buf)
                    .map_err(|e| format!("checkpoint {path}: {e}"))?;
            }
        }
    }
    sys.run(trace).map_err(|e| e.to_string())
}

/// The sweep-identity tag for a `verify-replay` journal: the audit is
/// defined by its app, GPU count, and footprint, so resuming under any
/// other shape is a typed tag-mismatch error.
fn verify_tag(cli: &Cli) -> u64 {
    oasis_engine::fnv1a(
        format!(
            "oasis-verify-replay-v1 app={} gpus={} footprint_mb={}",
            cli.app.abbr(),
            cli.gpus,
            cli.workload_params().footprint_mb
        )
        .as_bytes(),
    )
}

/// Decodes a journaled per-policy verdict: the payload is the rendered
/// output line (`Completed`) or the rendered failure message (otherwise).
fn decode_policy_payload(adj: &Adjudication) -> Result<Result<String, String>, String> {
    let text = String::from_utf8(adj.payload.clone())
        .map_err(|_| "verify-replay journal payload is not UTF-8".to_string())?;
    Ok(match adj.outcome {
        AdjudicatedOutcome::Completed => Ok(text),
        AdjudicatedOutcome::Failed | AdjudicatedOutcome::Quarantined => Err(text),
    })
}

/// The checkpoint/kill/resume determinism audit: each core policy runs the
/// app straight through and again with a mid-run kill and resume, and the
/// two reports (including per-epoch state digests) must be bit-identical.
/// The four policies fan out over the supervised pool (`--jobs`); lines
/// are collected in policy order, so the output is byte-identical to the
/// serial audit whatever the worker count. With `--journal` every verdict
/// is persisted, `--resume-sweep` skips already-audited policies, and a
/// SIGINT/SIGTERM drain exits resumable (code 75).
fn verify_replay(cli: &Cli, stop: Option<&StopHandle>) -> Result<String, CliError> {
    let policies = [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::oasis(),
    ];
    let trace = Arc::new(generate(cli.app, &cli.workload_params()));
    let config = cli.system_config();
    let midpoint = (trace.phases.len() as u64 / 2).max(1);
    let mut out = format!(
        "verify-replay {} — kill at epoch {midpoint}/{}, resume, compare\n",
        trace.app,
        trace.phases.len()
    );

    // Journal bring-up: on resume, policies the journal already
    // adjudicates are merged instead of re-audited.
    let tag = verify_tag(cli);
    let mut records: BTreeMap<u64, Result<String, String>> = BTreeMap::new();
    let journal: Option<JournalWriter> = match &cli.journal {
        None => None,
        Some(path) if cli.resume_sweep => {
            let path = std::path::Path::new(path);
            let (writer, recovery) = JournalWriter::resume(path, tag)
                .map_err(|e| format!("cannot resume sweep journal {}: {e}", path.display()))?;
            for w in recovery.warnings() {
                eprintln!("verify-replay: warning: {w}");
            }
            for (&id, adj) in &recovery.adjudicated {
                if (id as usize) < policies.len() {
                    records.insert(id, decode_policy_payload(adj)?);
                } else {
                    eprintln!(
                        "verify-replay: warning: journal adjudicates policy index {id}, \
                         beyond the audit; ignored"
                    );
                }
            }
            Some(writer)
        }
        Some(path) => {
            let path = std::path::Path::new(path);
            let label = format!("verify-replay {}", trace.app);
            Some(
                JournalWriter::create(path, tag, &label)
                    .map_err(|e| format!("cannot create sweep journal {}: {e}", path.display()))?,
            )
        }
    };
    let journal = RefCell::new(journal);
    let journal_failure: RefCell<Option<String>> = RefCell::new(None);
    let stop = stop.cloned().unwrap_or_default();

    // Only policies without a journaled verdict are dispatched; pool ids
    // are remapped back through `pending` to policy indices.
    let pending: Vec<u64> = (0..policies.len() as u64)
        .filter(|id| !records.contains_key(id))
        .collect();
    let jobs: Vec<Job<String>> = pending
        .iter()
        .map(|&id| {
            let policy = policies[id as usize].clone();
            let trace = Arc::clone(&trace);
            let config = config.clone();
            Job::new(policy.name(), move |_ctx| {
                let name = policy.name();
                let straight = System::new(config.clone(), &policy)
                    .run(&trace)
                    .map_err(|e| format!("{name}: straight run failed {e}"))?;
                let mut buf = Vec::new();
                {
                    let mut first = System::new(config.clone(), &policy);
                    first
                        .run_prefix(&trace, midpoint)
                        .map_err(|e| format!("{name}: prefix run failed {e}"))?;
                    first
                        .checkpoint(&mut buf)
                        .map_err(|e| format!("{name}: checkpoint failed {e}"))?;
                }
                let mut resumed = System::resume(&mut buf.as_slice(), &trace)
                    .map_err(|e| format!("{name}: resume failed {e}"))?;
                let report = resumed
                    .run(&trace)
                    .map_err(|e| format!("{name}: resumed run failed {e}"))?;
                report
                    .check_digests_against(&straight)
                    .map_err(|e| format!("{name}: {e}"))?;
                if !report.same_simulation(&straight) {
                    return Err(format!(
                        "{name}: resumed report differs from the straight run"
                    ));
                }
                Ok(format!(
                    "  {name:<16} OK  checkpoint {} bytes, {} epoch digests match\n",
                    buf.len(),
                    report.digest_trail.len()
                ))
            })
        })
        .collect();
    let mut on_dispatch = |pool_id: u64, attempt: u32| {
        if let Some(w) = journal.borrow_mut().as_mut() {
            if let Err(e) = w.dispatched(pending[pool_id as usize], attempt) {
                *journal_failure.borrow_mut() = Some(format!("sweep journal append failed: {e}"));
                stop.stop();
            }
        }
    };
    let mut on_adjudicated = |rec: &oasis_engine::pool::JobRecord<String>| {
        if let Some(w) = journal.borrow_mut().as_mut() {
            let payload = match &rec.outcome {
                JobOutcome::Completed(line) => line.clone(),
                JobOutcome::Failed(JobError::Failed(msg)) => msg.clone(),
                JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => {
                    format!("{}: job {e}", rec.label)
                }
            };
            if let Err(e) = w.adjudicated(
                pending[rec.id as usize],
                AdjudicatedOutcome::of(&rec.outcome),
                rec.attempts,
                payload.as_bytes(),
            ) {
                *journal_failure.borrow_mut() = Some(format!("sweep journal append failed: {e}"));
                stop.stop();
            }
        }
    };
    let ctrl = SweepControl {
        stop: Some(stop.clone()),
        on_dispatch: Some(&mut on_dispatch),
        on_adjudicated: Some(&mut on_adjudicated),
    };
    let sweep = run_sweep_controlled(&pool_config(cli), jobs, ctrl);
    for record in sweep.jobs {
        let id = pending[record.id as usize];
        let verdict = match record.outcome {
            JobOutcome::Completed(line) => Ok(line),
            JobOutcome::Failed(JobError::Failed(msg)) => Err(msg),
            JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => {
                Err(format!("{}: job {e}", record.label))
            }
        };
        records.insert(id, verdict);
    }
    if sweep.interrupted {
        if let Some(w) = journal.borrow_mut().as_mut() {
            if let Err(e) = w.interrupted(records.len() as u64) {
                eprintln!("verify-replay: warning: could not journal the Interrupted trailer: {e}");
            }
        }
    }
    if let Some(err) = journal_failure.into_inner() {
        return Err(err.into());
    }
    if sweep.interrupted {
        let journal_path = cli.journal.as_deref().unwrap_or("<journal>");
        return Err(CliError::Interrupted(format!(
            "verify-replay: drained after {}/{} policy audit(s); finish with: \
             oasis-sim verify-replay --app {} --journal {journal_path} --resume-sweep",
            records.len(),
            policies.len(),
            cli.app.abbr(),
        )));
    }
    for id in 0..policies.len() as u64 {
        match records.get(&id) {
            Some(Ok(line)) => out.push_str(line),
            Some(Err(msg)) => return Err(msg.clone().into()),
            None => unreachable!("an uninterrupted sweep adjudicates every policy"),
        }
    }
    out.push_str("all 4 policies replay bit-identically after kill/resume\n");
    Ok(out)
}

/// Replays every repro in a corpus directory over the supervised pool.
/// Skipped files (wrong extension, malformed) are warnings in the output;
/// any oracle violation or lost job is a failure (nonzero exit).
fn replay_corpus(cli: &Cli, dir: &std::path::Path) -> Result<String, String> {
    let corpus = oasis_fuzz::load_dir(dir).map_err(|e| format!("--replay: {e}"))?;
    let mut out = format!(
        "replay corpus {} — {} repro(s), {} skipped\n",
        dir.display(),
        corpus.len(),
        corpus.skipped.len()
    );
    for s in &corpus.skipped {
        let _ = writeln!(out, "  warning: skipped {}: {}", s.path.display(), s.reason);
    }
    if corpus.is_empty() {
        out.push_str("corpus is empty; nothing to replay\n");
        return Ok(out);
    }
    let jobs: Vec<Job<Option<oasis_fuzz::Violation>>> = corpus
        .entries
        .iter()
        .map(|entry| {
            let scenario = entry.scenario.clone();
            let label = entry.path.display().to_string();
            Job::new(label, move |_ctx| Ok(oasis_fuzz::check(&scenario)))
        })
        .collect();
    let sweep = run_sweep(&pool_config(cli), jobs);
    let mut failures = Vec::new();
    for (record, entry) in sweep.jobs.iter().zip(&corpus.entries) {
        match &record.outcome {
            JobOutcome::Completed(None) => {
                let _ = writeln!(out, "  {} OK", record.label);
            }
            JobOutcome::Completed(Some(v)) => failures.push(format!(
                "{}: {} — {}\n  repro: {}",
                record.label,
                v.kind,
                v.detail,
                entry.scenario.summary()
            )),
            JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => failures.push(format!(
                "{}: job {e} after {} attempt(s)",
                record.label, record.attempts
            )),
        }
    }
    if failures.is_empty() {
        let _ = writeln!(out, "all {} repro(s) clean", corpus.len());
        Ok(out)
    } else {
        Err(format!(
            "{out}{} corpus repro(s) failed:\n{}",
            failures.len(),
            failures.join("\n")
        ))
    }
}

/// The `fuzz` command: either replay saved corpus repros (one file or a
/// whole directory), or run a fuzzing session — all cases fanned over the
/// supervised pool, then the lowest-index violation shrunk and saved.
/// Any violation *or supervision casualty* is a failure: the exit code is
/// nonzero whenever a job ends `Failed`/`Quarantined`, `--json` or not.
/// A SIGINT/SIGTERM drain of a journaled session exits resumable (75).
fn fuzz(cli: &Cli, stop: Option<&StopHandle>) -> Result<String, CliError> {
    if let Some(path) = &cli.replay {
        if std::path::Path::new(path).is_dir() {
            return replay_corpus(cli, std::path::Path::new(path)).map_err(CliError::Failure);
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("--replay {path}: {e}"))?;
        let (scenario, _recorded) =
            oasis_fuzz::from_json(&text).map_err(|e| format!("--replay {path}: {e}"))?;
        return match oasis_fuzz::check(&scenario) {
            None => Ok(format!(
                "replay {path}: clean, every oracle passed\n  {}\n",
                scenario.summary()
            )),
            Some(v) => Err(format!(
                "replay {path}: {} violation\n  {}\n  repro: {}",
                v.kind,
                v.detail,
                scenario.summary()
            )
            .into()),
        };
    }

    let seed = cli.seed.unwrap_or(0);
    let mut opts = oasis_fuzz::FuzzOptions::new(seed, cli.cases);
    opts.time_budget = cli.time_budget_secs.map(std::time::Duration::from_secs);
    opts.corpus_dir = Some(cli.corpus_dir.as_deref().unwrap_or("tests/corpus").into());
    opts.jobs = cli.jobs;
    opts.deadline = cli.job_deadline_secs.map(std::time::Duration::from_secs);
    opts.attempts = cli.job_attempts;
    opts.journal = cli.journal.as_ref().map(std::path::PathBuf::from);
    opts.resume_sweep = cli.resume_sweep;
    opts.stop = stop.cloned();
    let report = oasis_fuzz::run_fuzz(&opts)?;

    // Journal warnings (salvaged tail, duplicate records) go to stderr so
    // stdout stays byte-identical between straight and resumed sessions.
    for w in &report.warnings {
        eprintln!("fuzz: warning: {w}");
    }
    if report.interrupted {
        let journal = cli.journal.as_deref().unwrap_or("<journal>");
        return Err(CliError::Interrupted(format!(
            "fuzz: sweep drained with {} of {} case(s) adjudicated; finish with: \
             oasis-sim fuzz --seed {seed} --cases {} --journal {journal} --resume-sweep",
            report.cases_run, cli.cases, cli.cases,
        )));
    }

    let mut problems = String::new();
    if let Some(f) = &report.failure {
        let corpus_note = f
            .corpus_path
            .as_ref()
            .map_or("corpus write failed".to_string(), |p| {
                format!("saved to {}", p.display())
            });
        let _ = writeln!(
            problems,
            "fuzz: {} violation(s), first at case {} (master seed {seed:#018x})\n  {}\n  \
             original: {}\n  shrunk repro (seed {:#018x}, {} shrink evals): {}\n  {}\n  \
             replay with: oasis-sim fuzz --replay <corpus file>",
            report.violations.len(),
            f.case_index,
            f.violation.detail,
            f.original.summary(),
            f.shrunk.seed,
            f.shrink_attempts,
            f.shrunk.summary(),
            corpus_note,
        );
    }
    for jf in &report.job_failures {
        let _ = writeln!(
            problems,
            "fuzz: case {} (scenario seed {:#018x}) lost to supervision: {} \
             after {} attempt(s){}",
            jf.case_index,
            jf.scenario_seed,
            jf.error,
            jf.attempts,
            if jf.quarantined { " [quarantined]" } else { "" },
        );
    }
    if !problems.is_empty() {
        // Nonzero exit whatever the output mode; --json callers get the
        // machine-readable report ahead of the failure summary.
        return Err(if cli.json {
            format!("{}{problems}", oasis_fuzz::report_json(&opts, &report))
        } else {
            problems
        }
        .into());
    }
    Ok(if cli.json {
        oasis_fuzz::report_json(&opts, &report)
    } else {
        format!(
            "fuzz: {} case(s) checked in {:.1}s (master seed {seed:#018x}), no violations\n",
            report.cases_run,
            report.elapsed.as_secs_f64()
        )
    })
}

/// Runs the crash-durable sweep server until SIGINT/SIGTERM drains it.
///
/// The listening line goes straight to stdout (flushed) the moment the
/// socket is live, because the normal return path only prints after the
/// server exits — clients and the CI gates wait on that line to connect.
/// A graceful drain is the *expected* way out, reported as
/// [`CliError::Interrupted`] so the process exits `EX_TEMPFAIL` (75) with
/// the resume hint; admitted-but-unfinished jobs stay in the journal and
/// a restart with the same `--serve-state` finishes them.
fn serve(cli: &Cli, stop: Option<&StopHandle>) -> Result<String, CliError> {
    let state_dir = std::path::PathBuf::from(cli.serve_state.as_deref().unwrap_or(".oasis-serve"));
    let mut cfg = oasis_serve::ServeConfig::new(state_dir.clone());
    cfg.port = cli.port;
    cfg.queue_depth = cli.queue_depth;
    cfg.conn_inflight = cli.conn_inflight;
    cfg.idle_timeout = std::time::Duration::from_secs(cli.idle_timeout_secs);
    cfg.pool = pool_config(cli);
    let stop = stop.cloned().unwrap_or_else(StopHandle::new);

    let summary = oasis_serve::run_serve(cfg, stop, |port| {
        println!("serve: listening on 127.0.0.1:{port}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
    })
    .map_err(CliError::Failure)?;

    // A degraded run (broken admission journal) kept serving cached
    // results but refused new work — that is exit 1, never a silent 75.
    if let Some(err) = &summary.journal_error {
        return Err(CliError::Failure(format!(
            "serve: degraded and drained: {err}; restart with --serve-state {} to \
             recover the journal and resume admissions",
            state_dir.display(),
        )));
    }

    let mut counters = String::new();
    for (key, value) in &summary.counters {
        let _ = writeln!(counters, "  {key} = {value}");
    }
    Err(CliError::Interrupted(format!(
        "serve: drained cleanly after {} adjudication(s); counters:\n{counters}\
         restart with --serve-state {} to resume any journaled jobs",
        summary.adjudicated,
        state_dir.display(),
    )))
}

/// Sends a batch of scenarios to a running sweep server and prints one
/// deterministic result line per submission.
///
/// Scenarios come from `--replay` (a corpus file or directory) or are
/// generated exactly the way `fuzz --seed N --cases K` would draw them,
/// so a sweep can be reproduced locally or through the server
/// interchangeably. Progress and the optional `--submit-stats` counter
/// snapshot go to stderr; stdout carries only content-derived result
/// lines, byte-identical across server restarts and cache hits.
fn submit(cli: &Cli) -> Result<String, CliError> {
    let scenarios: Vec<oasis_fuzz::Scenario> = match &cli.replay {
        Some(path) => {
            let p = std::path::Path::new(path);
            if p.is_dir() {
                let corpus = oasis_fuzz::load_dir(p).map_err(CliError::Failure)?;
                for s in &corpus.skipped {
                    eprintln!("submit: skipped {}: {}", s.path.display(), s.reason);
                }
                if corpus.is_empty() {
                    return Err(CliError::Failure(format!(
                        "--replay {path}: no corpus repros found"
                    )));
                }
                corpus.entries.into_iter().map(|e| e.scenario).collect()
            } else {
                let text = std::fs::read_to_string(p)
                    .map_err(|e| CliError::Failure(format!("--replay {path}: {e}")))?;
                let (scenario, _recorded) = oasis_fuzz::from_json(&text)
                    .map_err(|e| CliError::Failure(format!("--replay {path}: {e}")))?;
                vec![scenario]
            }
        }
        None => {
            let seed = cli.seed.unwrap_or(0);
            let mut master = oasis_engine::SimRng::seed_from_u64(seed);
            (0..cli.cases)
                .map(|_| oasis_fuzz::Scenario::generate(master.next_u64()))
                .collect()
        }
    };

    let outcome = oasis_serve::submit_batch_with_retry(
        cli.port,
        &scenarios,
        cli.submit_stats,
        std::time::Duration::from_secs(cli.submit_timeout_secs),
        cli.retries,
        std::time::Duration::from_millis(cli.retry_backoff_ms),
    )
    .map_err(CliError::Failure)?;

    for line in &outcome.progress {
        eprintln!("submit: {line}");
    }
    if cli.submit_stats {
        for (key, value) in &outcome.stats {
            eprintln!("submit: stat {key} = {value}");
        }
    }
    let body = outcome.results.join("\n");
    if outcome.failed > 0 {
        return Err(CliError::Failure(format!(
            "{body}\nsubmit: {} of {} job(s) did not complete cleanly",
            outcome.failed,
            scenarios.len()
        )));
    }
    Ok(body)
}

/// Executes a parsed invocation, returning the text to print or a
/// human-readable failure (nonzero exit).
///
/// # Errors
///
/// Returns a message describing the failed simulation, unreadable or
/// corrupted checkpoint, or replay divergence.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    run_with_stop(cli, None)
}

/// [`run`] with an optional cooperative stop handle threaded into the
/// sweep commands (fuzz, inject, verify-replay); `main` wires it to
/// SIGINT/SIGTERM via [`signal::install_drain`] so a journaled sweep
/// drains instead of dying mid-record.
///
/// # Errors
///
/// As [`run`]; additionally [`CliError::Interrupted`] when a sweep was
/// drained by the stop handle and is resumable.
pub fn run_with_stop(cli: &Cli, stop: Option<StopHandle>) -> Result<String, CliError> {
    let stop = stop.as_ref();
    Ok(match &cli.command {
        Command::Run => {
            let trace = generate(cli.app, &cli.workload_params());
            let report = if cli.resume.is_some() || cli.checkpoint_every.is_some() {
                run_with_checkpoints(cli, &trace)?
            } else {
                simulate(&cli.system_config(), cli.policy.clone(), &trace)
            };
            let trace_note = match &cli.trace_out {
                Some(path) => {
                    let json = oasis_engine::chrome_trace_json(&report.trace_events);
                    oasis_engine::atomic_write(std::path::Path::new(path), json.as_bytes())
                        .map_err(|e| format!("--trace-out {path}: {e}"))?;
                    format!(
                        "trace: {} events written to {path}\n",
                        report.trace_events.len()
                    )
                }
                None => String::new(),
            };
            let digest_note = match &cli.digest_out {
                Some(path) => {
                    let mut trail = String::new();
                    for d in &report.digest_trail {
                        trail.push_str(&format!("{d:#018x}\n"));
                    }
                    oasis_engine::atomic_write(std::path::Path::new(path), trail.as_bytes())
                        .map_err(|e| format!("--digest-out {path}: {e}"))?;
                    format!(
                        "digests: {} epoch digest(s) written to {path}\n",
                        report.digest_trail.len()
                    )
                }
                None => String::new(),
            };
            let body = if cli.json {
                render::report_json(&report)
            } else {
                render::report_text(&report)
            };
            // The side-channel notes go after text output but never
            // inside JSON (the files are written either way).
            if cli.json {
                body
            } else {
                format!("{body}{trace_note}{digest_note}")
            }
        }
        Command::Compare => {
            let trace = generate(cli.app, &cli.workload_params());
            let config = cli.system_config();
            let policies = args::all_policies();
            let mut reports = Vec::new();
            for p in policies {
                reports.push(simulate(&config, p, &trace));
            }
            render::comparison_text(&reports)
        }
        Command::Characterize => {
            let trace = generate(cli.app, &cli.workload_params());
            render::characterization_text(&trace, cli.system_config().page_size)
        }
        Command::Inject => {
            let seed = cli.seed.unwrap_or(0);
            let campaign = run_campaign_supervised(
                seed,
                &CampaignConfig {
                    jobs: cli.jobs,
                    deadline: cli.job_deadline_secs.map(std::time::Duration::from_secs),
                    attempts: cli.job_attempts,
                    journal: cli.journal.as_ref().map(std::path::PathBuf::from),
                    resume_sweep: cli.resume_sweep,
                    stop: stop.cloned(),
                },
            )?;
            for w in &campaign.warnings {
                eprintln!("inject: warning: {w}");
            }
            if campaign.interrupted {
                let journal = cli.journal.as_deref().unwrap_or("<journal>");
                return Err(CliError::Interrupted(format!(
                    "inject: campaign drained with {} of {} kind(s) adjudicated; finish \
                     with: oasis-sim inject --seed {seed} --journal {journal} --resume-sweep",
                    campaign.outcomes.len(),
                    oasis_mgpu::Perturbation::ALL.len(),
                )));
            }
            let body = if cli.json {
                render::inject_json(&campaign.outcomes)
            } else {
                let survivors = campaign.outcomes.iter().filter(|o| o.ok).count();
                let mut out = format!("fault-injection campaign, master seed {seed:#018x}\n\n");
                for o in &campaign.outcomes {
                    out.push_str(&o.line);
                    out.push('\n');
                }
                out.push_str(&format!(
                    "\n{survivors}/{} scenarios completed with invariants intact; \
                     replay any line with its printed seed\n",
                    campaign.outcomes.len()
                ));
                out
            };
            // Exit nonzero whenever the campaign deviates from per-kind
            // expectations or loses a job to supervision, --json or not.
            if !campaign.passed() {
                let mut problems = String::new();
                for o in campaign.outcomes.iter().filter(|o| !o.passed()) {
                    let _ = writeln!(problems, "inject: unexpected outcome: {}", o.line);
                }
                for (kind, err) in &campaign.job_failures {
                    let _ = writeln!(
                        problems,
                        "inject: {} lost to supervision: {err}",
                        kind.name()
                    );
                }
                return Err(format!("{body}{problems}").into());
            }
            body
        }
        Command::VerifyReplay => verify_replay(cli, stop)?,
        Command::Stats => {
            let trace = generate(cli.app, &cli.workload_params());
            let report = simulate(&cli.system_config(), cli.policy.clone(), &trace);
            render::stats_text(&report, cli.top)
        }
        Command::BenchSmoke => smoke::bench_smoke(cli)?,
        Command::Fuzz => fuzz(cli, stop)?,
        Command::Serve => serve(cli, stop)?,
        Command::Submit => submit(cli)?,
        Command::Chaos => chaos::run_chaos(cli)?,
        Command::Help => args::USAGE.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Cli {
        Cli::parse(argv.iter().map(|s| s.to_string())).expect("parse")
    }

    fn run_ok(argv: &[&str]) -> String {
        run(&parse(argv)).expect("command succeeds")
    }

    #[test]
    fn run_produces_report_text() {
        let out = run_ok(&["run", "--app", "MT", "--footprint-mb", "4"]);
        assert!(out.contains("simulated time"));
        assert!(out.contains("far faults"));
        assert!(out.contains("wall clock"));
    }

    #[test]
    fn run_json_is_wellformed_enough() {
        let out = run_ok(&["run", "--app", "MT", "--footprint-mb", "4", "--json"]);
        assert!(out.trim_start().starts_with('{'));
        assert!(out.contains("\"total_time_us\""));
        assert!(out.contains("\"retired_steps\""));
        assert!(out.contains("\"digest_trail\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn compare_lists_all_policies() {
        let out = run_ok(&["compare", "--app", "MT", "--footprint-mb", "4"]);
        for name in ["on-touch", "access-counter", "duplication", "oasis", "grit"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn characterize_lists_objects() {
        let out = run_ok(&["characterize", "--app", "MM", "--footprint-mb", "4"]);
        assert!(out.contains("MM_A"));
        assert!(out.contains("read-only"));
    }

    #[test]
    fn fault_plan_run_reports_recovery_counters() {
        let argv = [
            "run",
            "--app",
            "C2D",
            "--footprint-mb",
            "4",
            "--fault-plan",
            "seed:5,down:0-1@2",
        ];
        let text = run_ok(&argv);
        assert!(text.contains("hw degradation"), "{text}");
        assert!(text.contains("1 link fault(s)"), "{text}");
        let mut jargv = argv.to_vec();
        jargv.push("--json");
        let json = run_ok(&jargv);
        assert!(json.contains("\"link_faults\": 1"), "{json}");
        assert!(json.contains("\"reroutes\""), "{json}");
        // The zero-fault report keeps its old shape.
        let clean = run_ok(&["run", "--app", "C2D", "--footprint-mb", "4"]);
        assert!(!clean.contains("hw degradation"), "{clean}");
    }

    #[test]
    fn inject_is_deterministic_and_covers_all_kinds() {
        let a = run_ok(&["inject", "--seed", "9"]);
        let b = run_ok(&["inject", "--seed", "9"]);
        assert_eq!(a, b, "same seed, same campaign output");
        for kind in [
            "truncate-trace",
            "out-of-range-access",
            "capacity-crunch",
            "corrupt-counters",
            "policy-flip",
            "kill-and-resume",
            "link-down",
            "link-flaky",
            "ecc-poison",
        ] {
            assert!(a.contains(kind), "missing {kind} in:\n{a}");
        }
        assert!(a.contains("invariants intact"));
    }

    #[test]
    fn inject_json_is_one_object_per_line() {
        let out = run_ok(&["inject", "--seed", "9", "--json"]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), oasis_mgpu::Perturbation::ALL.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\""), "{line}");
            assert!(line.contains("\"seed\""), "{line}");
            assert!(line.contains("\"ok\""), "{line}");
        }
        assert!(out.contains("\"kill-and-resume\""));
    }

    #[test]
    fn checkpoint_write_and_resume_round_trip() {
        let dir = std::env::temp_dir().join("oasis-cli-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let dir = dir.to_str().expect("utf-8 temp dir");
        // C2D has 9 phases, so `--checkpoint-every 4` takes genuine mid-run
        // checkpoints at epochs 4 and 8.
        let straight = run_ok(&["run", "--app", "C2D", "--footprint-mb", "4", "--json"]);
        run_ok(&[
            "run",
            "--app",
            "C2D",
            "--footprint-mb",
            "4",
            "--checkpoint-every",
            "4",
            "--checkpoint-dir",
            dir,
        ]);
        let ckpt = format!("{dir}/C2D-oasis-epoch4.ckpt");
        assert!(std::path::Path::new(&ckpt).exists(), "missing {ckpt}");
        assert!(
            std::path::Path::new(&format!("{dir}/C2D-oasis-epoch8.ckpt")).exists(),
            "missing epoch-8 checkpoint"
        );
        let resumed = run_ok(&[
            "run",
            "--app",
            "C2D",
            "--footprint-mb",
            "4",
            "--resume",
            &ckpt,
            "--json",
        ]);
        // Deterministic fields must match; host timings won't.
        for key in ["\"total_time_us\"", "\"far_faults\"", "\"digest_trail\""] {
            let pick = |s: &str| {
                s.lines()
                    .find(|l| l.contains(key))
                    .map(str::to_string)
                    .unwrap_or_default()
            };
            assert_eq!(pick(&straight), pick(&resumed), "{key} diverged");
        }
        let err = run(&parse(&["run", "--resume", "/nonexistent/x.ckpt"]))
            .expect_err("missing checkpoint file fails");
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn verify_replay_passes_for_all_core_policies() {
        let out = run_ok(&["verify-replay", "--app", "C2D", "--footprint-mb", "4"]);
        for name in ["on-touch", "access-counter", "duplication", "oasis"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("bit-identically"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run_ok(&["help"]);
        assert!(out.contains("USAGE"));
        assert!(out.contains("verify-replay"));
        assert!(out.contains("--checkpoint-every"));
        assert!(out.contains("--trace-out"));
        assert!(out.contains("bench-smoke"));
        assert!(out.contains("--fault-plan"));
        assert!(out.contains("fuzz"));
        assert!(out.contains("--time-budget-secs"));
        assert!(out.contains("--replay"));
    }

    #[test]
    fn fuzz_clean_session_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("oasis-cli-fuzz-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let dir_s = dir.to_str().expect("utf-8 temp dir");

        // A tiny session on the healthy simulator is clean.
        let out = run_ok(&["fuzz", "--cases", "2", "--corpus-dir", dir_s]);
        assert!(out.contains("2 case(s) checked"), "{out}");
        assert!(out.contains("no violations"), "{out}");

        let json = run_ok(&["fuzz", "--cases", "1", "--corpus-dir", dir_s, "--json"]);
        assert!(json.contains("\"oasis-fuzz-report-v2\""), "{json}");
        assert!(json.contains("\"violations\": 0"), "{json}");
        assert!(json.contains("\"job_failures\": 0"), "{json}");

        // Replay a corpus file written by hand: clean scenario passes.
        let scenario = oasis_fuzz::Scenario::generate(0);
        let path = oasis_fuzz::write_repro(&dir, &scenario, None).expect("write repro");
        let path_s = path.to_str().expect("utf-8 path");
        let out = run_ok(&["fuzz", "--replay", path_s]);
        assert!(out.contains("clean"), "{out}");

        // A missing or unparsable replay file is a descriptive error.
        let err = run(&parse(&["fuzz", "--replay", "/nonexistent/r.json"]))
            .expect_err("missing replay file fails");
        assert!(err.to_string().contains("--replay"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_out_writes_deterministic_chrome_trace() {
        let dir = std::env::temp_dir().join("oasis-cli-trace-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path_a = dir.join("a.json");
        let path_b = dir.join("b.json");
        for path in [&path_a, &path_b] {
            run_ok(&[
                "run",
                "--app",
                "C2D",
                "--policy",
                "oasis",
                "--footprint-mb",
                "4",
                "--trace-out",
                path.to_str().expect("utf-8"),
            ]);
        }
        let a = std::fs::read(&path_a).expect("trace a");
        let b = std::fs::read(&path_b).expect("trace b");
        assert!(!a.is_empty());
        assert_eq!(a, b, "same-seed traces must be byte-identical");
        let text = String::from_utf8(a).expect("utf-8 trace");
        assert!(text.starts_with("[\n"), "chrome trace is a JSON array");
        assert!(text.ends_with("\n]\n"));
        for name in ["far_fault", "link_transfer", "migration"] {
            assert!(text.contains(name), "missing {name} events");
        }
    }

    #[test]
    fn stats_prints_counter_and_histogram_tables() {
        let out = run_ok(&["stats", "--app", "MM", "--footprint-mb", "4", "--top", "10"]);
        assert!(out.contains("metrics breakdown"), "{out}");
        assert!(out.contains("uvm.fault.service_ns"), "{out}");
        assert!(out.contains("per-epoch rollups"), "{out}");
        assert!(out.contains("access.local"), "{out}");
    }

    #[test]
    fn chaos_filtered_cells_hold_and_bad_filters_are_typed() {
        // The corpus slice keeps this test cheap; the full 26-cell matrix
        // runs in CI via `oasis-sim chaos` (scripts/ci.sh strict mode).
        let out = run_ok(&["chaos", "--chaos-filter", "corpus", "--jobs", "2"]);
        assert!(out.contains("corpus/corpus.write/eio"), "{out}");
        assert!(out.contains("corpus/corpus.write/enospc"), "{out}");
        assert!(
            out.contains("all 2 cell(s) held the invariant triad"),
            "{out}"
        );

        let err = run(&parse(&["chaos", "--chaos-filter", "no-such-cell"]))
            .expect_err("an unmatched filter is a typed failure");
        assert!(err.to_string().contains("matches no cell"), "{err}");
    }

    #[test]
    fn bench_smoke_writes_results_and_gates_on_regression() {
        let dir = std::env::temp_dir().join("oasis-cli-bench-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out_file = dir.join("BENCH_test.json");
        let out_path = out_file.to_str().expect("utf-8");
        let _ = std::fs::remove_file(out_path);
        // First run (quick matrix keeps the test snappy): no baseline yet,
        // must pass and create the file.
        let first = run_ok(&[
            "bench-smoke",
            "--matrix",
            "quick",
            "--runs",
            "1",
            "--bench-out",
            out_path,
        ]);
        assert!(first.contains("no-baseline"), "{first}");
        let json = std::fs::read_to_string(out_path).expect("bench file");
        assert!(json.contains("\"oasis-bench-smoke-v2\""));
        assert!(json.contains("\"C2D\"") && json.contains("\"MM\""));
        assert!(json.contains("\"rss_kb\""));
        // Second run gates against the first and should be within 90%+
        // headroom of itself... but wall-clock noise exists, so only check
        // the happy path with the widest legal tolerance.
        let second = run(&parse(&[
            "bench-smoke",
            "--matrix",
            "quick",
            "--runs",
            "1",
            "--bench-out",
            out_path,
            "--tolerance",
            "99",
        ]))
        .expect("repeat run stays within 99% tolerance");
        assert!(second.contains("ok"), "{second}");
        // An impossible baseline must trip the gate.
        let absurd = dir.join("absurd.json");
        std::fs::write(
            &absurd,
            "{\"cells\": [\n{\"app\": \"MM\", \"policy\": \"oasis\", \
             \"steps_per_sec\": 900000000000.0}\n]}\n",
        )
        .expect("write absurd baseline");
        let err = run(&parse(&[
            "bench-smoke",
            "--matrix",
            "quick",
            "--runs",
            "1",
            "--bench-out",
            out_path,
            "--baseline",
            absurd.to_str().expect("utf-8"),
        ]))
        .expect_err("absurd baseline must regress");
        let err = err.to_string();
        assert!(err.contains("regression"), "{err}");
        assert!(err.contains("MM/oasis"), "{err}");
    }
}
