//! `oasis-sim` — command-line front end for the OASIS simulator.
//!
//! ```sh
//! oasis-sim run --app MM --policy duplication
//! oasis-sim compare --app ST --gpus 8
//! oasis-sim characterize --app C2D
//! ```

use std::process::ExitCode;

use oasis_cli::{run, Cli};

fn main() -> ExitCode {
    match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => {
            println!("{}", run(&cli));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\nrun `oasis-sim help` for usage");
            ExitCode::FAILURE
        }
    }
}
