//! `oasis-sim` — command-line front end for the OASIS simulator.
//!
//! ```sh
//! oasis-sim run --app MM --policy duplication
//! oasis-sim compare --app ST --gpus 8
//! oasis-sim characterize --app C2D
//! oasis-sim inject --seed 42
//! ```

use std::io::Write;
use std::process::ExitCode;

use oasis_cli::{run, Cli};

fn main() -> ExitCode {
    match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => match run(&cli) {
            Ok(out) => {
                // A closed pipe (`oasis-sim ... | head`) is a normal way to
                // consume the output, not an error worth panicking over.
                if writeln!(std::io::stdout(), "{out}").is_err() {
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\nrun `oasis-sim help` for usage");
            ExitCode::FAILURE
        }
    }
}
