//! `oasis-sim` — command-line front end for the OASIS simulator.
//!
//! ```sh
//! oasis-sim run --app MM --policy duplication
//! oasis-sim compare --app ST --gpus 8
//! oasis-sim characterize --app C2D
//! oasis-sim inject --seed 42
//! ```

use std::io::Write;
use std::process::ExitCode;

use oasis_cli::{run_with_stop, signal, Cli, CliError, Command};
use oasis_engine::StopHandle;

/// Exit code for a journaled sweep drained on SIGINT/SIGTERM: sysexits'
/// `EX_TEMPFAIL` ("temporary failure, retry later") — rerun with
/// `--resume-sweep` to finish.
const EXIT_RESUMABLE: u8 = 75;

fn main() -> ExitCode {
    match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => {
            // Sweep commands drain gracefully on the first SIGINT/SIGTERM
            // (and die on the second); everything else keeps the default
            // kill-now behavior.
            let stop = match cli.command {
                Command::Fuzz | Command::Inject | Command::VerifyReplay | Command::Serve => {
                    let stop = StopHandle::new();
                    signal::install_drain(stop.clone());
                    Some(stop)
                }
                _ => None,
            };
            match run_with_stop(&cli, stop) {
                Ok(out) => {
                    // A closed pipe (`oasis-sim ... | head`) is a normal way to
                    // consume the output, not an error worth panicking over.
                    if writeln!(std::io::stdout(), "{out}").is_err() {
                        return ExitCode::FAILURE;
                    }
                    ExitCode::SUCCESS
                }
                Err(CliError::Interrupted(msg)) => {
                    eprintln!("interrupted: {msg}");
                    ExitCode::from(EXIT_RESUMABLE)
                }
                Err(CliError::Failure(msg)) => {
                    eprintln!("error: {msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}\nrun `oasis-sim help` for usage");
            ExitCode::FAILURE
        }
    }
}
