//! The `chaos` subcommand: a deterministic storage-fault audit over the
//! failpoint site x fault-kind matrix.
//!
//! Every durability claim the simulator makes — atomic checkpoint
//! publication, longest-clean-prefix journal salvage, corpus repro
//! writes, the serve cache and admission journal — is exercised here
//! under injected EIO, ENOSPC, short writes, fsync failures, rename
//! failures, and torn appends. Each matrix cell asserts the invariant
//! triad:
//!
//! 1. **No panic.** A cell runs as a supervised pool job; a panicking
//!    cell is quarantined and reported, never silently swallowed.
//! 2. **No corrupt artifact read back as valid.** After the fault the
//!    previously published artifact is byte-identical and loadable, and
//!    no staging debris is left behind.
//! 3. **Deterministic recovery.** A disarmed retry (or a journal resume)
//!    converges to output byte-identical to an uninterrupted run, or the
//!    fault surfaced as a typed error naming the injection site.
//!
//! Checkpoint, journal, and corpus cells use thread-scoped fail plans and
//! fan out over the supervised pool (`--jobs`). Serve cells drive a live
//! server whose worker threads the thread scope cannot reach, so they arm
//! process-scoped plans filtered to the cell's state directory and run
//! serially after the pool phase.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use oasis_engine::failpoint::{arm_process, arm_thread, FailPlan, FaultKind};
use oasis_engine::pool::{run_sweep, Job, JobError, JobOutcome, PoolConfig, StopHandle};
use oasis_fuzz::{report_json, run_fuzz, FuzzOptions, Scenario};
use oasis_mgpu::System;
use oasis_serve::{submit_batch, ServeConfig, ServeSummary};
use oasis_workloads::generate;

use crate::{pool_config, Cli, CliError};

/// Which durability surface a matrix cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Surface {
    /// `atomic_write` checkpoint publication over an older checkpoint.
    CheckpointPublish,
    /// `System::checkpoint` serialization through `codec.checkpoint`.
    CheckpointCodec,
    /// `JournalWriter::create` Begin publication inside a fuzz sweep.
    JournalBegin,
    /// Mid-sweep journal appends inside a fuzz sweep, then resume.
    JournalAppend,
    /// Corpus repro writes.
    Corpus,
    /// Serve result-cache writes: recompute-and-serve degradation.
    ServeCacheWrite,
    /// Serve result-cache reads: corrupt entries recompute and heal.
    ServeCacheRead,
    /// Serve admission journal: typed `unavailable` plus restart recovery.
    ServeJournal,
}

/// One site x kind cell of the audit matrix.
#[derive(Debug, Clone, Copy)]
struct Cell {
    surface: Surface,
    site: &'static str,
    kind: FaultKind,
}

impl Cell {
    fn group(&self) -> &'static str {
        match self.surface {
            Surface::CheckpointPublish | Surface::CheckpointCodec => "checkpoint",
            Surface::JournalBegin | Surface::JournalAppend => "journal",
            Surface::Corpus => "corpus",
            Surface::ServeCacheWrite | Surface::ServeCacheRead | Surface::ServeJournal => "serve",
        }
    }

    fn label(&self) -> String {
        format!("{}/{}/{}", self.group(), self.site, self.kind)
    }
}

/// The full audit matrix: every registered durability site crossed with
/// every fault kind that can physically strike it.
fn matrix() -> Vec<Cell> {
    use FaultKind::{Eio, Enospc, FsyncFail, RenameFail, ShortWrite, TornAppend};
    let mut cells = Vec::new();
    let mut push = |surface, site, kinds: &[FaultKind]| {
        for &kind in kinds {
            cells.push(Cell {
                surface,
                site,
                kind,
            });
        }
    };
    push(Surface::CheckpointPublish, "fsio.create", &[Eio, Enospc]);
    push(
        Surface::CheckpointPublish,
        "fsio.write",
        &[Eio, Enospc, ShortWrite, TornAppend],
    );
    push(
        Surface::CheckpointPublish,
        "fsio.fsync",
        &[FsyncFail, Enospc],
    );
    push(
        Surface::CheckpointPublish,
        "fsio.rename",
        &[RenameFail, Eio],
    );
    push(
        Surface::CheckpointCodec,
        "codec.checkpoint",
        &[Eio, Enospc, ShortWrite],
    );
    push(Surface::JournalBegin, "journal.begin", &[Eio, Enospc]);
    push(
        Surface::JournalAppend,
        "journal.append.write",
        &[Eio, Enospc, ShortWrite, TornAppend],
    );
    push(Surface::JournalAppend, "journal.append.fsync", &[FsyncFail]);
    push(Surface::Corpus, "corpus.write", &[Eio, Enospc]);
    push(
        Surface::ServeCacheWrite,
        "serve.cache.write",
        &[Eio, Enospc],
    );
    push(Surface::ServeCacheRead, "serve.cache.read", &[Eio]);
    push(Surface::ServeJournal, "journal.append.write", &[Eio]);
    cells
}

/// Shared reference artifacts, built once before the matrix runs: the
/// checkpoint pair every checkpoint cell publishes against, the straight
/// fuzz report every journal cell must converge to, and the corpus repro
/// bytes every corpus retry must reproduce.
struct Reference {
    trace: oasis_workloads::Trace,
    config: oasis_mgpu::SystemConfig,
    policy: oasis_mgpu::Policy,
    old_ckpt: Vec<u8>,
    new_ckpt: Vec<u8>,
    /// An uninterrupted straight run — codec cells replay against its
    /// per-epoch digest trail (checkpoint *bytes* embed host timings and
    /// are only comparable within one `System` instance).
    straight: oasis_mgpu::RunReport,
    fuzz_json: String,
    scenario: Scenario,
    repro_bytes: Vec<u8>,
}

/// The fixed fuzz workload journal cells run: tiny, clean, journaled.
fn journal_fuzz_opts(journal: PathBuf, resume: bool) -> FuzzOptions {
    let mut opts = FuzzOptions::new(0, 2);
    opts.jobs = 1;
    opts.journal = Some(journal);
    opts.resume_sweep = resume;
    opts
}

/// Drops the wall-clock line so two reports can be byte-compared.
fn stable_json(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("\"elapsed_secs\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn build_reference(root: &Path) -> Result<Reference, String> {
    let cli = Cli::parse(
        ["run", "--app", "C2D", "--footprint-mb", "4"]
            .iter()
            .map(|s| s.to_string()),
    )
    .map_err(|e| format!("chaos reference workload: {e}"))?;
    let trace = generate(cli.app, &cli.workload_params());
    let config = cli.system_config();
    let policy = cli.policy.clone();
    let checkpoint_at = |epoch: u64| -> Result<Vec<u8>, String> {
        let mut sys = System::new(config.clone(), &policy);
        sys.run_prefix(&trace, epoch)
            .map_err(|e| format!("reference prefix run: {e}"))?;
        let mut buf = Vec::new();
        sys.checkpoint(&mut buf)
            .map_err(|e| format!("reference checkpoint: {e}"))?;
        Ok(buf)
    };
    let old_ckpt = checkpoint_at(2)?;
    let new_ckpt = checkpoint_at(4)?;
    let straight = System::new(config.clone(), &policy)
        .run(&trace)
        .map_err(|e| format!("reference straight run: {e}"))?;

    let ref_dir = root.join("reference");
    std::fs::create_dir_all(&ref_dir).map_err(|e| format!("chaos reference dir: {e}"))?;
    let opts = journal_fuzz_opts(ref_dir.join("sweep.jnl"), false);
    let report = run_fuzz(&opts).map_err(|e| format!("reference fuzz sweep: {e}"))?;
    let fuzz_json = stable_json(&report_json(&opts, &report));

    let scenario = Scenario::generate(7);
    let repro_path = oasis_fuzz::write_repro(&ref_dir, &scenario, None)
        .map_err(|e| format!("reference corpus write: {e}"))?;
    let repro_bytes =
        std::fs::read(&repro_path).map_err(|e| format!("reference corpus read: {e}"))?;

    Ok(Reference {
        trace,
        config,
        policy,
        old_ckpt,
        new_ckpt,
        straight,
        fuzz_json,
        scenario,
        repro_bytes,
    })
}

/// Any staging temp files left under `dir` — must always be none.
fn stray_temps(dir: &Path) -> Result<Vec<String>, String> {
    let mut strays = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let name = entry
            .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
            .file_name()
            .to_string_lossy()
            .into_owned();
        if name.contains(".tmp.") {
            strays.push(name);
        }
    }
    Ok(strays)
}

/// Checkpoint-publication cell: the armed publish must fail with a typed
/// error naming the site, leave the old checkpoint byte-identical and
/// resumable with zero staging debris, and the disarmed retry must
/// converge to the new checkpoint.
fn run_checkpoint_publish_cell(cell: Cell, dir: &Path, r: &Reference) -> Result<String, String> {
    let path = dir.join("C2D-oasis.ckpt");
    oasis_engine::atomic_write(&path, &r.old_ckpt).map_err(|e| format!("publish old: {e}"))?;

    let scope = arm_thread(FailPlan::once(cell.site, cell.kind));
    let outcome = oasis_engine::atomic_write(&path, &r.new_ckpt);
    let fired = scope.fired();
    drop(scope);
    let err = match outcome {
        Ok(()) => return Err("armed publish succeeded; the fault never surfaced".into()),
        Err(e) => e,
    };
    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if !err.to_string().contains(cell.site) {
        return Err(format!("error does not name the site: {err}"));
    }

    let strays = stray_temps(dir)?;
    if !strays.is_empty() {
        return Err(format!("staging debris after the fault: {strays:?}"));
    }
    let visible = std::fs::read(&path).map_err(|e| format!("read target: {e}"))?;
    if visible != r.old_ckpt {
        return Err("the previously published checkpoint was corrupted".into());
    }
    let sys = System::resume(&mut visible.as_slice(), &r.trace)
        .map_err(|e| format!("old checkpoint no longer resumes: {e}"))?;
    if sys.next_epoch() != 2 {
        return Err(format!(
            "old checkpoint resumes at epoch {}",
            sys.next_epoch()
        ));
    }

    // Disarmed retry: the exact publish that just failed must converge.
    oasis_engine::atomic_write(&path, &r.new_ckpt).map_err(|e| format!("retry publish: {e}"))?;
    let visible = std::fs::read(&path).map_err(|e| format!("read retried target: {e}"))?;
    if visible != r.new_ckpt {
        return Err("retried publish is not byte-identical to the reference".into());
    }
    let sys = System::resume(&mut visible.as_slice(), &r.trace)
        .map_err(|e| format!("retried checkpoint does not resume: {e}"))?;
    if sys.next_epoch() != 4 {
        return Err(format!("retry resumes at epoch {}", sys.next_epoch()));
    }
    Ok("old checkpoint intact and resumable, no strays, retry converged".into())
}

/// Codec cell: serialization itself fails typed; nothing is published,
/// and the disarmed retry yields a checkpoint that resumes and replays
/// digest-identically to an uninterrupted run.
fn run_checkpoint_codec_cell(cell: Cell, r: &Reference) -> Result<String, String> {
    let mut sys = System::new(r.config.clone(), &r.policy);
    sys.run_prefix(&r.trace, 4)
        .map_err(|e| format!("prefix run: {e}"))?;

    let scope = arm_thread(FailPlan::once(cell.site, cell.kind));
    let mut buf = Vec::new();
    let outcome = sys.checkpoint(&mut buf);
    let fired = scope.fired();
    drop(scope);
    let err = match outcome {
        Ok(()) => return Err("armed checkpoint succeeded; the fault never surfaced".into()),
        Err(e) => e,
    };
    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if !err.to_string().contains(cell.site) {
        return Err(format!("error does not name the site: {err}"));
    }

    buf.clear();
    sys.checkpoint(&mut buf)
        .map_err(|e| format!("retry checkpoint: {e}"))?;
    let mut resumed = System::resume(&mut buf.as_slice(), &r.trace)
        .map_err(|e| format!("retried checkpoint does not resume: {e}"))?;
    if resumed.next_epoch() != 4 {
        return Err(format!(
            "retried checkpoint resumes at epoch {}",
            resumed.next_epoch()
        ));
    }
    let report = resumed
        .run(&r.trace)
        .map_err(|e| format!("resumed run: {e}"))?;
    report
        .check_digests_against(&r.straight)
        .map_err(|e| format!("resumed replay diverges: {e}"))?;
    Ok("serialization failed typed, retry resumes and replays identically".into())
}

/// Journal-Begin cell: the sweep refuses to start without a durable
/// journal (typed error, no file), and a disarmed rerun matches the
/// straight reference report byte for byte.
fn run_journal_begin_cell(cell: Cell, dir: &Path, r: &Reference) -> Result<String, String> {
    let jpath = dir.join("sweep.jnl");
    let scope = arm_thread(FailPlan::once(cell.site, cell.kind));
    let outcome = run_fuzz(&journal_fuzz_opts(jpath.clone(), false));
    let fired = scope.fired();
    drop(scope);
    let err = match outcome {
        Ok(_) => return Err("armed sweep started; the fault never surfaced".into()),
        Err(e) => e,
    };
    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if !err.contains(cell.site) || !err.contains("cannot create sweep journal") {
        return Err(format!("error does not name the site and surface: {err}"));
    }
    if jpath.exists() {
        return Err("a failed Begin publication left a journal file behind".into());
    }

    let opts = journal_fuzz_opts(jpath, false);
    let report = run_fuzz(&opts).map_err(|e| format!("disarmed rerun: {e}"))?;
    if stable_json(&report_json(&opts, &report)) != r.fuzz_json {
        return Err("disarmed rerun report differs from the reference".into());
    }
    Ok("sweep refused to start untracked, rerun byte-identical".into())
}

/// Journal-append cell: the sweep stops on the append failure with a
/// typed error, recovery salvages the journal without panicking, and a
/// resumed sweep produces the exact straight-run report.
fn run_journal_append_cell(cell: Cell, dir: &Path, r: &Reference) -> Result<String, String> {
    let jpath = dir.join("sweep.jnl");
    let mut plan = FailPlan::once(cell.site, cell.kind);
    // Let the Begin record and the first append land so the salvage has a
    // genuine clean prefix to keep.
    plan.after = Some(1);
    let scope = arm_thread(plan);
    let outcome = run_fuzz(&journal_fuzz_opts(jpath.clone(), false));
    let fired = scope.fired();
    drop(scope);
    let err = match outcome {
        Ok(_) => return Err("armed sweep completed; the fault never surfaced".into()),
        Err(e) => e,
    };
    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if !err.contains(cell.site) || !err.contains("sweep journal append failed") {
        return Err(format!("error does not name the site and surface: {err}"));
    }

    // The damaged journal must recover typed — salvage, never panic or
    // garbage — before the resume reads it.
    oasis_engine::journal::recover(&jpath).map_err(|e| format!("recover after fault: {e}"))?;

    let opts = journal_fuzz_opts(jpath, true);
    let report = run_fuzz(&opts).map_err(|e| format!("resumed sweep: {e}"))?;
    if report.interrupted {
        return Err("resumed sweep did not run to completion".into());
    }
    if stable_json(&report_json(&opts, &report)) != r.fuzz_json {
        return Err("resumed report differs from the straight reference".into());
    }
    Ok("append failed typed, salvage clean, resume byte-identical".into())
}

/// Corpus cell: a failed repro write is typed, leaves nothing behind, and
/// the retry reproduces the reference bytes exactly.
fn run_corpus_cell(cell: Cell, dir: &Path, r: &Reference) -> Result<String, String> {
    let scope = arm_thread(FailPlan::once(cell.site, cell.kind));
    let outcome = oasis_fuzz::write_repro(dir, &r.scenario, None);
    let fired = scope.fired();
    drop(scope);
    let err = match outcome {
        Ok(_) => return Err("armed repro write succeeded; the fault never surfaced".into()),
        Err(e) => e,
    };
    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if !err.to_string().contains(cell.site) {
        return Err(format!("error does not name the site: {err}"));
    }
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    if !leftovers.is_empty() {
        return Err(format!(
            "a failed repro write left files behind: {leftovers:?}"
        ));
    }

    let path = oasis_fuzz::write_repro(dir, &r.scenario, None)
        .map_err(|e| format!("retry repro write: {e}"))?;
    let bytes = std::fs::read(&path).map_err(|e| format!("read retried repro: {e}"))?;
    if bytes != r.repro_bytes {
        return Err("retried repro bytes differ from the reference".into());
    }
    Ok("write failed typed with no leftovers, retry byte-identical".into())
}

/// A live in-process sweep server for the serve cells.
struct ServeHarness {
    stop: StopHandle,
    port: u16,
    handle: std::thread::JoinHandle<Result<ServeSummary, String>>,
}

fn start_serve(state: PathBuf) -> Result<ServeHarness, String> {
    let mut cfg = ServeConfig::new(state);
    cfg.pool = PoolConfig::with_workers(2);
    cfg.idle_timeout = Duration::from_secs(120);
    let stop = StopHandle::new();
    let stop2 = stop.clone();
    let (ptx, prx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        oasis_serve::run_serve(cfg, stop2, move |port| {
            let _ = ptx.send(port);
        })
    });
    match prx.recv_timeout(Duration::from_secs(30)) {
        Ok(port) => Ok(ServeHarness { stop, port, handle }),
        Err(_) => {
            let err = match handle.join() {
                Ok(Ok(_)) => "server exited before announcing its port".to_string(),
                Ok(Err(e)) => e,
                Err(_) => "server thread panicked".to_string(),
            };
            Err(format!("server did not come up: {err}"))
        }
    }
}

impl ServeHarness {
    fn shutdown(self) -> Result<ServeSummary, String> {
        self.stop.stop();
        self.handle
            .join()
            .map_err(|_| "server thread panicked".to_string())?
    }
}

fn counter(summary: &ServeSummary, key: &str) -> u64 {
    summary
        .counters
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

const SUBMIT_TIMEOUT: Duration = Duration::from_secs(120);

fn submit_one(port: u16, scenario: &Scenario) -> Result<String, String> {
    let outcome = submit_batch(port, std::slice::from_ref(scenario), false, SUBMIT_TIMEOUT)?;
    outcome
        .results
        .first()
        .cloned()
        .ok_or_else(|| "submit resolved no result line".to_string())
}

/// A process-scoped plan confined to this cell's state directory, so the
/// server's worker threads hit it and nothing else ever can.
fn process_plan(cell: Cell, state_tag: &str, count_all: bool) -> FailPlan {
    let mut plan = FailPlan::once(cell.site, cell.kind);
    plan.after = Some(0);
    if count_all {
        plan.count = u64::MAX;
    }
    plan.path = Some(state_tag.to_string());
    plan
}

/// Cache-write cell: every cache write fails, yet both the first and the
/// recomputed second submission complete with identical verdicts, the
/// failures are counted, and the journal stays healthy.
fn run_serve_cache_write_cell(cell: Cell, state: PathBuf) -> Result<String, String> {
    let state_tag = state
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or("state dir has no name")?;
    let scenario = Scenario::generate(41);
    let scope = arm_process(process_plan(cell, &state_tag, true));
    let server = start_serve(state)?;
    let first = submit_one(server.port, &scenario)?;
    let second = submit_one(server.port, &scenario)?;
    let summary = server.shutdown()?;
    let fired = scope.fired();
    drop(scope);

    if !first.contains(" completed: ") || !second.contains(" completed: ") {
        return Err(format!(
            "submissions must complete uncached under cache-write faults:\n{first}\n{second}"
        ));
    }
    if first != second {
        return Err("recomputed verdict differs from the first".into());
    }
    if fired < 2 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected both writes"
        ));
    }
    let failed = counter(&summary, "serve.cache_write_failed");
    if failed < 2 {
        return Err(format!("cache-write failures under-counted: {failed}"));
    }
    if let Some(e) = summary.journal_error {
        return Err(format!("journal must stay healthy in this cell: {e}"));
    }
    Ok("both submissions served uncached, identical verdicts, failures counted".into())
}

/// Cache-read cell: a cached entry that turns unreadable is treated as
/// corrupt, recomputed, and the served verdict is byte-identical.
fn run_serve_cache_read_cell(cell: Cell, state: PathBuf) -> Result<String, String> {
    let state_tag = state
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or("state dir has no name")?;
    let scenario = Scenario::generate(42);
    let server = start_serve(state)?;
    let first = submit_one(server.port, &scenario)?;
    if !first.contains(" completed: ") {
        return Err(format!("priming submission did not complete: {first}"));
    }

    let scope = arm_process(process_plan(cell, &state_tag, false));
    let second = submit_one(server.port, &scenario)?;
    let fired = scope.fired();
    drop(scope);
    let summary = server.shutdown()?;

    if fired != 1 {
        return Err(format!(
            "failpoint fired {fired} time(s), expected exactly 1"
        ));
    }
    if second != first {
        return Err(format!(
            "recomputed verdict differs from the cached one:\n{first}\n{second}"
        ));
    }
    if let Some(e) = summary.journal_error {
        return Err(format!("journal must stay healthy in this cell: {e}"));
    }
    Ok("unreadable cache entry recomputed, verdict byte-identical".into())
}

/// Admission-journal cell: with the queue journal broken, cached results
/// keep flowing, new work is refused with the typed `unavailable`
/// rejection, the degradation reaches the summary, and a restart on the
/// same state directory recovers full service.
fn run_serve_journal_cell(cell: Cell, state: PathBuf) -> Result<String, String> {
    let state_tag = state
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or("state dir has no name")?;
    let a = Scenario::generate(44);
    let b = Scenario::generate(45);

    let server = start_serve(state.clone())?;
    let cached = submit_one(server.port, &a)?;
    if !cached.contains(" completed: ") {
        return Err(format!("priming submission did not complete: {cached}"));
    }

    let scope = arm_process(process_plan(cell, &state_tag, true));
    let hit = submit_one(server.port, &a)?;
    let refused = submit_one(server.port, &b)?;
    let summary = server.shutdown()?;
    drop(scope);

    if hit != cached {
        return Err("cached result changed while the journal was broken".into());
    }
    if !refused.contains(" rejected: unavailable: ") {
        return Err(format!("new work must be refused typed: {refused}"));
    }
    let err = summary
        .journal_error
        .as_deref()
        .ok_or("the degradation never reached the serve summary")?;
    if !err.contains("journal append failed") {
        return Err(format!("summary names the wrong failure: {err}"));
    }
    if counter(&summary, "serve.rejected_unavailable") < 1 {
        return Err("the unavailable rejection was not counted".into());
    }

    // Disarmed restart on the same state: the refused job now computes.
    let server = start_serve(state)?;
    let after = submit_one(server.port, &b)?;
    let summary = server.shutdown()?;
    if !after.contains(" completed: ") {
        return Err(format!("restart did not recover admissions: {after}"));
    }
    if let Some(e) = summary.journal_error {
        return Err(format!("restarted server is still degraded: {e}"));
    }
    Ok("cache served, admission refused typed, restart recovered".into())
}

/// Runs one serve-surface cell serially on the calling thread, converting
/// a panic anywhere in the cell into a failed (never fatal) verdict.
fn run_serve_cell(cell: Cell, state: PathBuf) -> Result<String, String> {
    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match cell.surface {
        Surface::ServeCacheWrite => run_serve_cache_write_cell(cell, state),
        Surface::ServeCacheRead => run_serve_cache_read_cell(cell, state),
        Surface::ServeJournal => run_serve_journal_cell(cell, state),
        _ => unreachable!("not a serve cell"),
    }));
    match body {
        Ok(result) => result,
        Err(_) => Err("cell panicked".into()),
    }
}

/// Runs the storage-chaos audit and renders one verdict line per cell.
///
/// # Errors
///
/// Returns [`CliError::Failure`] when any cell violates the invariant
/// triad (the report, with every per-cell diagnosis, is in the message) —
/// the process exits nonzero so CI treats a single violated durability
/// claim as a broken build.
pub(crate) fn run_chaos(cli: &Cli) -> Result<String, CliError> {
    let mut cells = matrix();
    if let Some(filter) = &cli.chaos_filter {
        cells.retain(|c| c.label().contains(filter.as_str()));
        if cells.is_empty() {
            return Err(CliError::Failure(format!(
                "--chaos-filter '{filter}' matches no cell; labels look like \
                 checkpoint/fsio.write/torn-append"
            )));
        }
    }

    let root = std::env::temp_dir().join(format!("oasis-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| format!("chaos work dir: {e}"))?;
    let reference = Arc::new(build_reference(&root).map_err(CliError::Failure)?);

    // Phase 1: checkpoint, journal, and corpus cells fan out over the
    // supervised pool. Thread-scoped plans keep concurrent cells fully
    // isolated; a panicking cell is quarantined, not fatal.
    let pool_cells: Vec<(usize, Cell)> = cells
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| {
            !matches!(
                c.surface,
                Surface::ServeCacheWrite | Surface::ServeCacheRead | Surface::ServeJournal
            )
        })
        .collect();
    let jobs: Vec<Job<String>> = pool_cells
        .iter()
        .map(|&(idx, cell)| {
            let r = Arc::clone(&reference);
            let dir = root.join(format!("cell-{idx:02}"));
            Job::new(cell.label(), move |_ctx| {
                std::fs::create_dir_all(&dir).map_err(|e| format!("cell dir: {e}"))?;
                match cell.surface {
                    Surface::CheckpointPublish => run_checkpoint_publish_cell(cell, &dir, &r),
                    Surface::CheckpointCodec => run_checkpoint_codec_cell(cell, &r),
                    Surface::JournalBegin => run_journal_begin_cell(cell, &dir, &r),
                    Surface::JournalAppend => run_journal_append_cell(cell, &dir, &r),
                    Surface::Corpus => run_corpus_cell(cell, &dir, &r),
                    _ => unreachable!("serve cells run serially"),
                }
            })
        })
        .collect();
    let sweep = run_sweep(&pool_config(cli), jobs);
    let mut verdicts: std::collections::BTreeMap<usize, Result<String, String>> =
        std::collections::BTreeMap::new();
    for (record, &(idx, _)) in sweep.jobs.iter().zip(&pool_cells) {
        let verdict = match &record.outcome {
            JobOutcome::Completed(line) => Ok(line.clone()),
            JobOutcome::Failed(JobError::Failed(msg)) => Err(msg.clone()),
            JobOutcome::Failed(e) => Err(format!("job {e}")),
            JobOutcome::Quarantined(e) => Err(format!("panicked: quarantined ({e})")),
        };
        verdicts.insert(idx, verdict);
    }

    // Phase 2: serve cells run serially — their process-scoped plans are
    // path-filtered to the cell's own state directory, and the process
    // token serializes them anyway.
    for (serve_idx, (idx, cell)) in cells
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| {
            matches!(
                c.surface,
                Surface::ServeCacheWrite | Surface::ServeCacheRead | Surface::ServeJournal
            )
        })
        .enumerate()
    {
        let state = root.join(format!("serve-{serve_idx}"));
        verdicts.insert(idx, run_serve_cell(cell, state));
    }

    let _ = std::fs::remove_dir_all(&root);

    let mut out = format!(
        "storage chaos: {} cell(s) over {} site(s)\n",
        cells.len(),
        cells
            .iter()
            .map(|c| c.site)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    let mut failures = 0usize;
    for (idx, cell) in cells.iter().enumerate() {
        match verdicts.get(&idx) {
            Some(Ok(line)) => {
                let _ = writeln!(out, "  ok    {:<42} {line}", cell.label());
            }
            Some(Err(msg)) => {
                failures += 1;
                let _ = writeln!(out, "  FAIL  {:<42} {msg}", cell.label());
            }
            None => {
                failures += 1;
                let _ = writeln!(
                    out,
                    "  FAIL  {:<42} cell was never adjudicated",
                    cell.label()
                );
            }
        }
    }
    if failures > 0 {
        return Err(CliError::Failure(format!(
            "{out}chaos: {failures} of {} cell(s) violated a durability invariant",
            cells.len()
        )));
    }
    let _ = writeln!(
        out,
        "chaos: all {} cell(s) held the invariant triad — no panic, no corrupt \
         artifact read back as valid, recovery byte-identical or typed",
        cells.len()
    );
    Ok(out)
}
