//! The `bench-smoke` throughput gate.
//!
//! Runs a benchmark matrix `--runs` times per cell and keeps the best
//! wall-clock (host noise only ever slows a run down, so best-of-N is the
//! stable estimator). Two matrices exist: `--matrix full` (the default)
//! covers every workload app under the four core policies at 8 MB
//! footprints; `--matrix quick` is the historical four-cell C2D/MM x
//! on-touch/oasis spot check at 4 MB. Results land in a small JSON file
//! (`oasis-bench-smoke-v2`: per-cell steps/sec and peak-RSS watermark);
//! before overwriting it, the previous file (or an explicit `--baseline`)
//! is read back and the gate fails if any cell present in both regressed
//! more than `--tolerance` percent in retired-steps/sec. The matrix runs
//! *dark* (no tracing, no metrics): it measures the simulator hot path the
//! way production sweeps run it.

use std::fmt::Write as _;

use oasis_engine::pool::{run_sweep, Job, JobOutcome};
use oasis_mgpu::{simulate, Policy, SystemConfig};
use oasis_workloads::{generate, App, WorkloadParams, ALL_APPS};

use crate::args::Cli;

/// Default result file, at the repo root by convention.
const DEFAULT_OUT: &str = "BENCH_pr8.json";

/// The four core policies every app is benchmarked under.
const CORE_POLICIES: [&str; 4] = ["on-touch", "access-counter", "duplication", "oasis"];

/// Footprint (MB) for the full matrix; deliberately larger than the
/// historical quick matrix so capacity effects show up in the numbers.
const FULL_FOOTPRINT_MB: u64 = 8;

/// Footprint (MB) of the historical quick matrix (kept for comparability
/// with committed BENCH_pr4.json baselines).
const QUICK_FOOTPRINT_MB: u64 = 4;

/// The benchmark matrix selected by `--matrix`: (app, policy, footprint).
fn matrix(kind: &str) -> Vec<(App, &'static str, u64)> {
    match kind {
        "quick" => vec![
            (App::C2d, "on-touch", QUICK_FOOTPRINT_MB),
            (App::C2d, "oasis", QUICK_FOOTPRINT_MB),
            (App::Mm, "on-touch", QUICK_FOOTPRINT_MB),
            (App::Mm, "oasis", QUICK_FOOTPRINT_MB),
        ],
        _ => ALL_APPS
            .iter()
            .flat_map(|&app| {
                CORE_POLICIES
                    .iter()
                    .map(move |&policy| (app, policy, FULL_FOOTPRINT_MB))
            })
            .collect(),
    }
}

/// One benchmark cell's best-of-N measurement.
struct Cell {
    app: &'static str,
    policy: &'static str,
    wall_clock_us: u64,
    retired_steps: u64,
    steps_per_sec: f64,
    /// Process peak-RSS watermark (kB) observed when the cell finished.
    /// `VmHWM` is a process-wide high-water mark, so with the default
    /// serial execution this reads as a running maximum across cells.
    rss_kb: u64,
}

impl Cell {
    fn key(&self) -> String {
        format!("{}/{}", self.app, self.policy)
    }
}

/// Peak resident set size in kB (`VmHWM`), or 0 where /proc is absent.
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
    }
    0
}

fn policy_by_name(name: &str) -> Policy {
    match name {
        "on-touch" => Policy::OnTouch,
        "access-counter" => Policy::AccessCounter,
        "duplication" => Policy::Duplication,
        "oasis" => Policy::oasis(),
        other => unreachable!("matrix policy '{other}'"),
    }
}

fn run_cell(app: App, policy_name: &'static str, footprint_mb: u64, runs: usize) -> Cell {
    let mut params = WorkloadParams::paper(app, 4);
    params.footprint_mb = footprint_mb;
    let trace = generate(app, &params);
    let policy = policy_by_name(policy_name);
    let mut best_wall = u64::MAX;
    let mut steps = 0;
    for _ in 0..runs {
        let r = simulate(&SystemConfig::default(), policy.clone(), &trace);
        steps = r.instrumentation.retired_steps;
        best_wall = best_wall.min(r.instrumentation.wall_clock_us.max(1));
    }
    Cell {
        app: app.abbr(),
        policy: policy_name,
        wall_clock_us: best_wall,
        retired_steps: steps,
        steps_per_sec: steps as f64 / (best_wall as f64 / 1e6),
        rss_kb: peak_rss_kb(),
    }
}

/// Renders the result file: valid JSON, one cell object per line so the
/// baseline reader (and shell tools) can line-scan it.
fn render_json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"oasis-bench-smoke-v2\",");
    let _ = writeln!(out, "  \"peak_rss_kb\": {},", peak_rss_kb());
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"app\": \"{}\", \"policy\": \"{}\", \"wall_clock_us\": {}, \
             \"retired_steps\": {}, \"steps_per_sec\": {:.1}, \"rss_kb\": {}}}{comma}",
            c.app, c.policy, c.wall_clock_us, c.retired_steps, c.steps_per_sec, c.rss_kb
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls a quoted string field out of one JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Pulls a numeric field out of one JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline steps/sec per cell key, parsed by line scan (tolerates any
/// surrounding schema — v1 files gate fine — as long as cell objects stay
/// one per line).
fn parse_baseline(content: &str) -> Vec<(String, f64)> {
    content
        .lines()
        .filter_map(|line| {
            let app = field_str(line, "app")?;
            let policy = field_str(line, "policy")?;
            let sps = field_num(line, "steps_per_sec")?;
            Some((format!("{app}/{policy}"), sps))
        })
        .collect()
}

/// Runs the matrix, writes the result file, and gates against the
/// baseline. Returns the human-readable summary, or the regression
/// message (nonzero exit) when a cell fell below tolerance.
pub(crate) fn bench_smoke(cli: &Cli) -> Result<String, String> {
    let out_path = cli.bench_out.as_deref().unwrap_or(DEFAULT_OUT);
    // Read the baseline *before* overwriting the result file.
    let baseline_path = cli.baseline.as_deref().unwrap_or(out_path);
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(content) => parse_baseline(&content),
        Err(_) if cli.baseline.is_none() => Vec::new(),
        Err(e) => return Err(format!("--baseline {baseline_path}: {e}")),
    };

    let cells_spec = matrix(&cli.matrix);
    // The matrix fans out over the supervised pool. `--jobs` defaults to
    // 1 and should usually stay there for this command: cells measure
    // wall-clock, and concurrent cells contend for cores. The supervision
    // (panic containment, optional deadline) is what earns its keep here.
    let jobs: Vec<Job<Cell>> = cells_spec
        .iter()
        .map(|&(app, policy, footprint_mb)| {
            let runs = cli.runs;
            Job::new(format!("{}/{policy}", app.abbr()), move |_ctx| {
                Ok(run_cell(app, policy, footprint_mb, runs))
            })
        })
        .collect();
    let sweep = run_sweep(&crate::pool_config(cli), jobs);
    let mut cells = Vec::with_capacity(cells_spec.len());
    for record in sweep.jobs {
        match record.outcome {
            JobOutcome::Completed(cell) => cells.push(cell),
            JobOutcome::Failed(e) | JobOutcome::Quarantined(e) => {
                return Err(format!(
                    "bench cell {} failed under supervision: {e} \
                     (after {} attempt(s))",
                    record.label, record.attempts
                ))
            }
        }
    }
    // Atomic publish: a crash mid-write must not destroy the previous
    // result file, which doubles as the next run's baseline.
    oasis_engine::atomic_write(
        std::path::Path::new(out_path),
        render_json(&cells).as_bytes(),
    )
    .map_err(|e| format!("{out_path}: {e}"))?;

    let mut out = format!(
        "bench-smoke: {} matrix, best of {} run(s) per cell, tolerance {}%\n",
        cli.matrix, cli.runs, cli.tolerance
    );
    let mut regressions = Vec::new();
    for c in &cells {
        let key = c.key();
        let verdict = match baseline.iter().find(|(k, _)| *k == key) {
            Some((_, base_sps)) => {
                let floor = base_sps * (1.0 - cli.tolerance as f64 / 100.0);
                if c.steps_per_sec < floor {
                    regressions.push(format!(
                        "{key}: {:.0} steps/s fell below {floor:.0} (baseline {base_sps:.0})",
                        c.steps_per_sec
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
            None => "no-baseline",
        };
        let _ = writeln!(
            out,
            "  {key:<22} {:>12.0} steps/s  ({} steps in {:.1} ms)  {verdict}",
            c.steps_per_sec,
            c.retired_steps,
            c.wall_clock_us as f64 / 1000.0
        );
    }
    let _ = writeln!(out, "results written to {out_path}");
    if regressions.is_empty() {
        Ok(out)
    } else {
        Err(format!(
            "{out}throughput regression:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let cells = vec![
            Cell {
                app: "C2D",
                policy: "on-touch",
                wall_clock_us: 2_000,
                retired_steps: 1_000,
                steps_per_sec: 500_000.0,
                rss_kb: 10_240,
            },
            Cell {
                app: "MM",
                policy: "oasis",
                wall_clock_us: 4_000,
                retired_steps: 1_000,
                steps_per_sec: 250_000.0,
                rss_kb: 10_304,
            },
        ];
        let json = render_json(&cells);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"oasis-bench-smoke-v2\""));
        assert!(json.contains("\"rss_kb\": 10240"));
        let parsed = parse_baseline(&json);
        assert_eq!(
            parsed,
            vec![
                ("C2D/on-touch".to_string(), 500_000.0),
                ("MM/oasis".to_string(), 250_000.0),
            ]
        );
    }

    #[test]
    fn field_extractors_handle_missing_keys() {
        assert_eq!(field_str("{\"app\": \"MM\"}", "app"), Some("MM"));
        assert_eq!(field_str("{}", "app"), None);
        assert_eq!(
            field_num("\"steps_per_sec\": 12.5}", "steps_per_sec"),
            Some(12.5)
        );
        assert_eq!(field_num("{}", "steps_per_sec"), None);
    }

    #[test]
    fn matrices_cover_what_they_claim() {
        let full = matrix("full");
        assert_eq!(full.len(), ALL_APPS.len() * CORE_POLICIES.len());
        assert!(full.iter().all(|&(_, _, mb)| mb == FULL_FOOTPRINT_MB));
        // Every (app, policy) pair appears exactly once.
        let mut keys: Vec<String> = full
            .iter()
            .map(|&(a, p, _)| format!("{}/{p}", a.abbr()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), full.len());

        let quick = matrix("quick");
        assert_eq!(quick.len(), 4);
        assert!(quick.iter().all(|&(_, _, mb)| mb == QUICK_FOOTPRINT_MB));
    }

    #[test]
    fn v1_baselines_still_gate_v2_results() {
        // A v1 file (no rss_kb, v1 schema tag) parses to the same keys.
        let v1 = "{\n  \"schema\": \"oasis-bench-smoke-v1\",\n  \"cells\": [\n    \
                  {\"app\": \"C2D\", \"policy\": \"oasis\", \"wall_clock_us\": 10, \
                  \"retired_steps\": 5, \"steps_per_sec\": 500000.0}\n  ]\n}\n";
        assert_eq!(
            parse_baseline(v1),
            vec![("C2D/oasis".to_string(), 500_000.0)]
        );
    }
}
