//! Zero-dependency SIGINT/SIGTERM handling for graceful sweep drain.
//!
//! The first signal flips a process-global atomic from an async-signal-safe
//! handler; a detached watcher thread notices within ~25ms and raises the
//! sweep's [`StopHandle`], so the supervisor stops dispatching, lets
//! in-flight jobs finish (or hit their deadline), journals the clean
//! `Interrupted` trailer, and exits with the resumable code 75. The handler
//! also restores the default disposition, so a *second* ^C force-kills the
//! process immediately — the classic "drain on one, die on two" contract.
//!
//! This is deliberately `libc`-free: Rust's `std` already links the C
//! runtime on Unix, so declaring `signal(2)` ourselves keeps the workspace
//! dependency-less. On non-Unix targets installation is a no-op and sweeps
//! simply run to completion.

use oasis_engine::StopHandle;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::StopHandle;

    /// Set (only) by the signal handler; polled by the watcher thread.
    static SIGNALED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_DFL` — the default disposition (terminate) on every Unix.
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The actual handler: async-signal-safe by construction — one relaxed
    /// store plus two `signal(2)` calls (which POSIX lists as safe).
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
        // Restore the default disposition so a second signal is fatal
        // instead of being swallowed while the sweep drains.
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }

    pub(super) fn install_drain(stop: StopHandle) {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        // The watcher does the non-signal-safe part (waking the sweep).
        // It is detached; process exit reaps it if no signal ever lands.
        std::thread::spawn(move || loop {
            if SIGNALED.load(Ordering::SeqCst) {
                stop.stop();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
}

#[cfg(not(unix))]
mod imp {
    use super::StopHandle;

    pub(super) fn install_drain(_stop: StopHandle) {}
}

/// Installs SIGINT/SIGTERM handlers that raise `stop` on the first signal
/// and force-kill on the second. Call at most once, before the sweep runs.
pub fn install_drain(stop: StopHandle) {
    imp::install_drain(stop);
}
