//! Replays every saved fuzz repro in `tests/corpus/` against the full
//! differential oracle.
//!
//! The corpus is append-only institutional memory: whenever the fuzzer
//! finds and shrinks a violation, the minimal repro lands here (see
//! `oasis-sim fuzz`), and from then on this test guards against the bug
//! ever coming back. The seed files committed with the fuzzer are known
//! clean scenarios covering the main code paths (multi-GPU striped 2 MiB
//! pages, capacity-pressure eviction, ECC fault recovery), so this test
//! also smoke-checks the oracle harness itself on every CI run.

use oasis::fuzz::{check, load_dir};

#[test]
fn every_corpus_repro_passes_all_oracles() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let corpus = load_dir(&dir).expect("corpus directory is readable");
    assert!(
        !corpus.is_empty(),
        "tests/corpus must hold at least the seed scenarios"
    );
    assert!(
        corpus.skipped.is_empty(),
        "every committed corpus file must parse; skipped: {:?}",
        corpus.skipped
    );
    let mut failures = Vec::new();
    for entry in &corpus.entries {
        if let Some(v) = check(&entry.scenario) {
            failures.push(format!(
                "{}: {} — {}\n  repro: {}",
                entry.path.display(),
                v.kind,
                v.detail,
                entry.scenario.summary()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus repro(s) regressed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
