//! Archetype-level policy invariants: the qualitative claims of
//! Section IV hold on hand-built traces whose patterns are unambiguous.

use oasis::prelude::*;
use oasis::workloads::trace::block;

const GPUS: usize = 4;
const MB: u64 = 1024 * 1024;

fn run(policy: Policy, trace: &Trace) -> RunReport {
    simulate(&SystemConfig::default(), policy, trace)
}

/// A purely private workload: each GPU sweeps only its own block.
fn private_trace() -> Trace {
    let mut b = TraceBuilder::new("private", GPUS);
    let buf = b.alloc("buf", 8 * MB);
    let pages = b.pages_of(buf);
    b.begin_phase("k");
    for g in 0..GPUS {
        let blk = block(pages, GPUS, g);
        b.seq(g, buf, blk.clone(), AccessKind::Write, 8);
        b.seq(g, buf, blk, AccessKind::Read, 8);
    }
    b.finish()
}

/// A read-only object shared by every GPU, revisited several times.
fn read_shared_trace() -> Trace {
    let mut b = TraceBuilder::new("read-shared", GPUS);
    let table = b.alloc("table", 8 * MB);
    let pages = b.pages_of(table);
    b.begin_phase("k");
    for _pass in 0..3 {
        for g in 0..GPUS {
            b.seq(g, table, 0..pages, AccessKind::Read, 8);
        }
    }
    b.finish()
}

/// A write-shared object ping-ponged between all GPUs.
fn write_shared_trace() -> Trace {
    let mut b = TraceBuilder::new("write-shared", GPUS);
    let buf = b.alloc("buf", 4 * MB);
    let pages = b.pages_of(buf);
    b.begin_phase("k");
    for _round in 0..4 {
        for g in 0..GPUS {
            b.seq(g, buf, 0..pages, AccessKind::Write, 4);
        }
    }
    b.finish()
}

#[test]
fn private_data_on_touch_matches_ideal() {
    let t = private_trace();
    let on_touch = run(Policy::OnTouch, &t);
    let ideal = run(Policy::Ideal, &t);
    // After the initial cold migration, everything is local: on-touch is
    // within a few percent of the hypothetical ideal (Section IV-B).
    let ratio = ideal.speedup_over(&on_touch);
    assert!(
        (0.95..=1.05).contains(&ratio),
        "on-touch should match ideal on private data, got {ratio}"
    );
    // And no consistency actions ever happen.
    assert_eq!(on_touch.uvm.collapses, 0);
    assert_eq!(on_touch.remote_accesses, 0);
}

#[test]
fn access_counter_defers_and_loses_on_private_data() {
    let t = private_trace();
    let on_touch = run(Policy::OnTouch, &t);
    let acctr = run(Policy::AccessCounter, &t);
    // "Access counter-based migration defers data migration until the
    // counter threshold is met, leading to increased remote access
    // latency" — it must not beat on-touch on private data.
    assert!(acctr.speedup_over(&on_touch) <= 1.0);
    assert!(
        acctr.remote_accesses > 0,
        "deferral implies remote accesses"
    );
}

#[test]
fn duplication_wins_read_shared_data() {
    let t = read_shared_trace();
    let on_touch = run(Policy::OnTouch, &t);
    let dup = run(Policy::Duplication, &t);
    let acctr = run(Policy::AccessCounter, &t);
    assert!(
        dup.speedup_over(&on_touch) > 1.2,
        "duplication must clearly beat on-touch ping-pong on read-shared data"
    );
    assert!(dup.speedup_over(&acctr) > 1.0);
    // All copies, no collapses.
    assert!(dup.uvm.duplications > 0);
    assert_eq!(dup.uvm.collapses, 0);
}

#[test]
fn duplication_collapse_storm_on_write_shared_data() {
    let t = write_shared_trace();
    let dup = run(Policy::Duplication, &t);
    let acctr = run(Policy::AccessCounter, &t);
    assert!(dup.uvm.collapses > 0, "write sharing must collapse");
    assert!(
        acctr.speedup_over(&dup) > 1.0,
        "access-counter must beat duplication on write-shared data"
    );
}

#[test]
fn oasis_matches_best_uniform_policy_per_archetype() {
    // Shared-write-only is OASIS's weakest class (the paper: it "cannot
    // achieve the ideal target"), so it gets a looser bound: OASIS's
    // first-touch migrations cost it a little against pure access-counter.
    for (name, trace, bound) in [
        ("private", private_trace(), 0.9),
        ("read-shared", read_shared_trace(), 0.9),
        ("write-shared", write_shared_trace(), 0.75),
    ] {
        let oasis = run(Policy::oasis(), &trace);
        let best_uniform = [Policy::OnTouch, Policy::AccessCounter, Policy::Duplication]
            .into_iter()
            .map(|p| run(p, &trace).total_time)
            .min()
            .expect("nonempty");
        let ratio = best_uniform.as_ps() as f64 / oasis.total_time.as_ps() as f64;
        assert!(
            ratio > bound,
            "{name}: OASIS must stay within {bound} of the best uniform policy, got {ratio:.2}"
        );
    }
}

#[test]
fn ideal_is_an_upper_bound_everywhere() {
    for trace in [private_trace(), read_shared_trace(), write_shared_trace()] {
        let ideal = run(Policy::Ideal, &trace);
        for p in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::oasis(),
            Policy::grit(),
        ] {
            let r = run(p.clone(), &trace);
            assert!(
                ideal.total_time.as_ps() as f64 <= r.total_time.as_ps() as f64 * 1.02,
                "ideal must not lose to {} on {}",
                p.name(),
                trace.app
            );
        }
    }
}

#[test]
fn oasis_dedupes_read_shared_without_collapses() {
    let t = read_shared_trace();
    let oasis = run(Policy::oasis(), &t);
    assert!(oasis.uvm.duplications > 0, "read sharing must duplicate");
    assert_eq!(oasis.uvm.collapses, 0, "nothing is ever written");
}

#[test]
fn oasis_inmem_tracks_oasis_closely() {
    for trace in [read_shared_trace(), write_shared_trace()] {
        let hw = run(Policy::oasis(), &trace);
        let sw = run(Policy::oasis_inmem(), &trace);
        let ratio = sw.speedup_over(&hw);
        assert!(
            (0.9..=1.1).contains(&ratio),
            "InMem must track hardware OASIS within 10%, got {ratio}"
        );
        // Identical policy decisions => identical fault mix.
        assert_eq!(hw.uvm.duplications, sw.uvm.duplications);
    }
}

#[test]
fn reports_are_internally_consistent() {
    for p in [
        Policy::OnTouch,
        Policy::oasis(),
        Policy::grit(),
        Policy::Ideal,
    ] {
        let t = read_shared_trace();
        let r = run(p, &t);
        assert_eq!(r.accesses as usize, t.total_accesses());
        assert_eq!(r.accesses, r.local_accesses + r.remote_accesses);
        let (h1, m1) = r.l1_tlb;
        assert_eq!(h1 + m1, r.accesses, "every access walks the L1 TLB");
        let mix: u64 = r.policy_mix.iter().sum();
        assert_eq!(mix, r.l2_tlb.1, "one policy-mix sample per L2 TLB miss");
    }
}
