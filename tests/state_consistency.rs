//! Randomized consistency of the full system: after running arbitrary
//! small traces under any policy, the distributed page-table state obeys
//! its invariants. The heavy lifting is done by sim-guard — the same
//! checker production runs can enable — validated at step granularity
//! during the run; a few redundant manual checks keep the checker honest.
//!
//! Cases are driven by the in-tree deterministic [`SimRng`] (the build
//! environment is offline, so no external property-testing framework is
//! available); a failing case index pins the exact input.

use oasis::engine::SimRng;
use oasis::mgpu::GuardMode;
use oasis::prelude::*;
use oasis::uvm::guard::check_mem_state;
use oasis::workloads::trace::TRANSACTION_BYTES;

const CASES: u64 = 24;

/// A small random trace on 4 GPUs over three 64-page objects.
fn random_trace(rng: &mut SimRng) -> Trace {
    let mut b = TraceBuilder::new("rand", 4);
    let objs = [
        b.alloc("o0", 64 * 4096),
        b.alloc("o1", 64 * 4096),
        b.alloc("o2", 64 * 4096),
    ];
    let phases = 1 + rng.gen_below(2);
    for pi in 0..phases {
        b.begin_phase(format!("k{pi}"));
        for g in 0..4 {
            for _ in 0..rng.gen_below(60) {
                let obj = objs[rng.gen_below(objs.len())];
                let page = rng.gen_range(0..64);
                let kind = if rng.gen_bool_ratio(1, 2) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                b.seq(g, obj, page..page + 1, kind, 2);
            }
        }
    }
    b.finish()
}

fn all_policies() -> [Policy; 7] {
    [
        Policy::OnTouch,
        Policy::AccessCounter,
        Policy::Duplication,
        Policy::Ideal,
        Policy::oasis(),
        Policy::oasis_inmem(),
        Policy::grit(),
    ]
}

/// After any run: every local PTE agrees with the centralized table,
/// residency matches frame accounting, and copy sets are sane — enforced
/// by the step-granularity guard during the run and re-checked after.
#[test]
fn page_table_state_is_consistent() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x57A7_E000 + case);
        let trace = random_trace(&mut rng);
        for policy in all_policies() {
            let config = SystemConfig {
                guard: GuardMode::Step,
                ..SystemConfig::default()
            };
            let ideal = policy.name() == "ideal";
            let mut system = System::new(config, &policy);
            let report = system
                .run(&trace)
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", policy.name()));
            assert_eq!(
                report.accesses as usize,
                trace.total_accesses(),
                "case {case} {}",
                policy.name()
            );

            let state = &system.driver().state;
            check_mem_state(state, ideal)
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", policy.name()));
            system
                .validate()
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", policy.name()));

            // Redundant spot checks, independent of the guard's code.
            for (vpn, entry) in state.host_table.iter() {
                let vpn = *vpn;
                if let DeviceId::Gpu(owner) = entry.owner {
                    assert!(
                        state.frames[owner.index()].contains(vpn),
                        "case {case}: owner {owner} must hold a frame for {vpn}"
                    );
                }
                for g in 0..4u8 {
                    let gpu = GpuId(g);
                    let is_copy = entry.copy_mask & (1 << g) != 0;
                    match state.local_tables[g as usize].get(vpn) {
                        Some(p) if p.location == DeviceId::Gpu(gpu) => {
                            assert!(
                                entry.owner == DeviceId::Gpu(gpu) || is_copy,
                                "case {case}: {gpu} maps {vpn} locally without data"
                            );
                            if is_copy && !ideal {
                                assert!(!p.writable, "case {case}: duplicates are read-only");
                            }
                        }
                        Some(p) => {
                            assert!(
                                entry.maps_remotely(gpu),
                                "case {case}: {gpu} has unknown remote map for {vpn}"
                            );
                            assert_eq!(p.location, entry.owner, "case {case}");
                        }
                        None => {
                            assert!(!is_copy, "case {case}: {gpu} holds a copy without a PTE");
                        }
                    }
                }
            }
        }
    }
}

/// Total simulated time is bounded below and the run never loses accesses.
#[test]
fn time_is_bounded_below() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from_u64(0x71ED_0000 + case);
        let trace = random_trace(&mut rng);
        for policy in all_policies() {
            let report = simulate(&SystemConfig::default(), policy, &trace);
            assert_eq!(
                report.accesses,
                report.local_accesses + report.remote_accesses,
                "case {case}"
            );
            if trace.total_accesses() > 0 {
                assert!(report.total_time.as_ns() > 0.0, "case {case}");
            }
            // Conservation: every transfer is either a page (4096 bytes) or
            // a transaction, both multiples of 64.
            let unit = u64::from(TRANSACTION_BYTES).min(64);
            let total = report.nvlink_bytes + report.pcie_bytes;
            assert_eq!(total % unit, 0, "case {case}");
        }
    }
}
