//! Property-based consistency of the full system: after running arbitrary
//! small traces under any policy, the distributed page-table state obeys
//! its invariants.

use oasis::prelude::*;
use oasis::workloads::trace::TRANSACTION_BYTES;
use proptest::prelude::*;

/// Strategy: a small random trace on 4 GPUs over up to 3 objects.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let access = (0u16..3, 0u64..64, prop::bool::ANY);
    let stream = prop::collection::vec(access, 0..60);
    let phase = prop::collection::vec(stream, 4);
    prop::collection::vec(phase, 1..3).prop_map(|phases| {
        let mut b = TraceBuilder::new("prop", 4);
        let objs = [
            b.alloc("o0", 64 * 4096),
            b.alloc("o1", 64 * 4096),
            b.alloc("o2", 64 * 4096),
        ];
        for (pi, phase) in phases.into_iter().enumerate() {
            b.begin_phase(format!("k{pi}"));
            for (g, stream) in phase.into_iter().enumerate() {
                for (obj, page, write) in stream {
                    let kind = if write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    b.seq(g, objs[obj as usize], page..page + 1, kind, 2);
                }
            }
        }
        b.finish()
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::OnTouch),
        Just(Policy::AccessCounter),
        Just(Policy::Duplication),
        Just(Policy::Ideal),
        Just(Policy::oasis()),
        Just(Policy::oasis_inmem()),
        Just(Policy::grit()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any run: every local PTE agrees with the centralized table,
    /// residency matches frame accounting, and copy sets are sane.
    #[test]
    fn page_table_state_is_consistent(trace in arb_trace(), policy in arb_policy()) {
        let mut system = System::new(SystemConfig::default(), &policy);
        let report = system.run(&trace);
        prop_assert_eq!(report.accesses as usize, trace.total_accesses());

        let driver = system.driver();
        let state = &driver.state;
        let ideal = policy.name() == "ideal";
        for (vpn, entry) in state.host_table.iter() {
            let vpn = *vpn;
            // Owner residency: a GPU owner must hold the frame.
            if let DeviceId::Gpu(owner) = entry.owner {
                prop_assert!(
                    state.frames[owner.index()].contains(vpn),
                    "owner {owner} must hold a frame for {vpn}"
                );
            }
            for g in 0..4u8 {
                let gpu = GpuId(g);
                let pte = state.local_tables[g as usize].get(vpn);
                let is_owner = entry.owner == DeviceId::Gpu(gpu);
                let is_copy = entry.copy_mask & (1 << g) != 0;
                let is_mapper = entry.maps_remotely(gpu);
                match pte {
                    Some(p) => {
                        if p.location == DeviceId::Gpu(gpu) {
                            // Local translation: must hold data.
                            prop_assert!(is_owner || is_copy,
                                "{gpu} maps {vpn} locally without data");
                            prop_assert!(state.frames[g as usize].contains(vpn));
                            if is_copy && !ideal {
                                prop_assert!(!p.writable, "duplicates are read-only");
                            }
                        } else {
                            // Remote translation: must be a known mapper,
                            // pointing at the current owner.
                            prop_assert!(is_mapper, "{gpu} has unknown remote map");
                            prop_assert_eq!(p.location, entry.owner);
                        }
                    }
                    None => {
                        prop_assert!(!is_copy, "{gpu} holds a copy without a PTE");
                        prop_assert!(!is_mapper, "{gpu} is a mapper without a PTE");
                    }
                }
            }
            // Writable exclusivity (Ideal deliberately breaks this):
            // if any duplicates exist, no GPU may hold a writable mapping.
            if entry.copy_mask != 0 && !ideal {
                for g in 0..4usize {
                    if let Some(p) = state.local_tables[g].get(vpn) {
                        if p.location == DeviceId::Gpu(GpuId(g as u8)) {
                            prop_assert!(
                                !p.writable,
                                "writable mapping coexists with duplicates on {vpn}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Total simulated time is at least the trivial lower bound and the
    /// run never loses accesses.
    #[test]
    fn time_is_bounded_below(trace in arb_trace(), policy in arb_policy()) {
        let report = simulate(&SystemConfig::default(), policy, &trace);
        prop_assert_eq!(report.accesses, report.local_accesses + report.remote_accesses);
        if trace.total_accesses() > 0 {
            prop_assert!(report.total_time.as_ns() > 0.0);
        }
        // Conservation: bytes moved over links are multiples of whole
        // transfers (pages or transactions).
        let page = 4096u64;
        let txn = u64::from(TRANSACTION_BYTES);
        let total = report.nvlink_bytes + report.pcie_bytes;
        // Every transfer is either a page (4096) or a transaction (64),
        // both multiples of 64.
        prop_assert_eq!(total % txn.min(page).min(64), 0);
    }
}
