//! Eviction under memory pressure: a workload whose footprint exceeds a
//! single GPU's frame budget must complete, evict, and keep the
//! cross-layer memory state consistent throughout (sim-guard enabled).

use oasis::mgpu::GuardMode;
use oasis::prelude::*;

fn pressured_trace() -> Trace {
    let mut b = TraceBuilder::new("pressure", 4);
    let buf = b.alloc("buf", 4 * 1024 * 1024); // 1024 pages
    let pages = b.pages_of(buf);
    // Two sweeps so evicted pages are re-faulted, not just dropped.
    for pass in 0..2 {
        b.begin_phase(format!("sweep{pass}"));
        for g in 0..4 {
            b.seq(g, buf, 0..pages, AccessKind::Write, 16);
        }
    }
    b.finish()
}

#[test]
fn oversubscribed_run_evicts_and_stays_consistent() {
    let trace = pressured_trace();
    for policy in [Policy::OnTouch, Policy::AccessCounter, Policy::oasis()] {
        let config = SystemConfig {
            guard: GuardMode::Epoch,
            ..SystemConfig::default().with_oversubscription(trace.footprint_bytes(), 400)
        };
        let cap = config.gpu_capacity_pages.expect("capped");
        let mut system = System::new(config, &policy);
        let report = system
            .run(&trace)
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));

        assert_eq!(
            report.accesses as usize,
            trace.total_accesses(),
            "{}",
            policy.name()
        );
        assert!(
            report.uvm.evictions > 0,
            "{}: pressure must evict",
            policy.name()
        );
        system
            .validate()
            .unwrap_or_else(|e| panic!("{}: post-run guard: {e}", policy.name()));

        // The frame allocators never exceeded their budget.
        let state = &system.driver().state;
        for (g, frames) in state.frames.iter().enumerate() {
            assert!(
                frames.resident() <= cap,
                "{}: GPU {g} holds {} frames over the {cap} cap",
                policy.name(),
                frames.resident()
            );
        }
    }
}

#[test]
fn step_guard_holds_under_sustained_eviction() {
    // The strictest setting: invariants re-checked after every single
    // transaction while the allocator churns.
    let mut b = TraceBuilder::new("churn", 4);
    let buf = b.alloc("buf", 512 * 4096);
    let pages = b.pages_of(buf);
    b.begin_phase("k");
    for g in 0..4 {
        b.seq(g, buf, 0..pages, AccessKind::Read, 4);
    }
    let trace = b.finish();

    let config = SystemConfig {
        guard: GuardMode::Step,
        gpu_capacity_pages: Some(24),
        ..SystemConfig::default()
    };
    let mut system = System::new(config, &Policy::OnTouch);
    let report = system.run(&trace).expect("guarded run completes");
    assert!(report.uvm.evictions > 0, "caps this tight must evict");
}
