//! The fault-injection harness, end to end: a campaign is a pure function
//! of its master seed (replayable bit-for-bit), covers every perturbation
//! kind, and every scenario either completes with the invariant checker
//! passing or aborts with a typed error naming the seed and step.

use oasis::mgpu::{run_campaign, Perturbation};

const SEED: u64 = 0x0A51_50DE_FACE_0FF1;

#[test]
fn campaign_is_deterministic_across_runs() {
    let first = run_campaign(SEED);
    let second = run_campaign(SEED);
    assert_eq!(first, second, "identical seeds must replay identically");
    // The determinism that matters is the visible output: line-for-line.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.line, b.line);
    }
}

#[test]
fn campaign_exercises_every_distinct_perturbation() {
    let outcomes = run_campaign(SEED);
    // Exact ordered coverage, not a deduplicated count: a skipped kind
    // (or one kind run twice) must fail here, so the assertion can't pass
    // vacuously if the campaign drops a scenario.
    let kinds: Vec<Perturbation> = outcomes.iter().map(|o| o.kind).collect();
    assert_eq!(
        kinds,
        Perturbation::ALL.to_vec(),
        "campaign must run every kind exactly once, in declaration order"
    );
    // Scenario seeds are derived, distinct, and printed for replay.
    let seeds: std::collections::HashSet<u64> = outcomes.iter().map(|o| o.seed).collect();
    assert_eq!(
        seeds.len(),
        outcomes.len(),
        "per-scenario seeds are distinct"
    );
    for o in &outcomes {
        assert!(
            o.line.contains(&format!("seed={:#018x}", o.seed)),
            "replay seed missing from `{}`",
            o.line
        );
    }
}

#[test]
fn every_scenario_completes_cleanly_or_fails_typed() {
    for o in run_campaign(SEED) {
        if o.ok {
            // Survivors ran under the epoch guard and re-validated after.
            assert!(o.line.contains("guard=ok"), "{}", o.line);
        } else {
            // Failures carry the step number of the first typed error.
            assert!(o.line.contains("at step"), "{}", o.line);
        }
    }
}

#[test]
fn malformed_trace_faults_are_typed_not_panics() {
    let outcomes = run_campaign(SEED);
    let oor = outcomes
        .iter()
        .find(|o| o.kind == Perturbation::OutOfRangeAccess)
        .expect("campaign includes the out-of-range scenario");
    assert!(!oor.ok);
    assert!(oor.line.contains("outside object"), "{}", oor.line);
}

#[test]
fn hardware_fault_kinds_recover_with_typed_outcomes() {
    let outcomes = run_campaign(SEED);
    for kind in [
        Perturbation::LinkDown,
        Perturbation::LinkFlaky,
        Perturbation::EccPoison,
    ] {
        let o = outcomes
            .iter()
            .find(|o| o.kind == kind)
            .unwrap_or_else(|| panic!("campaign schedules {}", kind.name()));
        assert!(o.ok, "{}", o.line);
        assert!(o.line.contains("guard=ok"), "{}", o.line);
        // Hardware scenarios report their recovery counters for replay.
        assert!(o.line.contains("reroutes="), "{}", o.line);
        assert!(o.line.contains("quarantines="), "{}", o.line);
    }
}

#[test]
fn different_master_seeds_drive_different_scenarios() {
    let a = run_campaign(1);
    let b = run_campaign(2);
    assert_ne!(
        a.iter().map(|o| o.seed).collect::<Vec<_>>(),
        b.iter().map(|o| o.seed).collect::<Vec<_>>()
    );
}
