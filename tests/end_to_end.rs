//! End-to-end sanity over every application and policy at reduced sizes.

use oasis::prelude::*;

fn tiny(app: App) -> WorkloadParams {
    WorkloadParams {
        footprint_mb: (app.footprint_mb(4) / 16).max(2),
        ..WorkloadParams::small(app, 4)
    }
}

#[test]
fn every_app_runs_under_every_policy() {
    let config = SystemConfig::default();
    for app in ALL_APPS {
        let trace = generate(app, &tiny(app));
        for policy in [
            Policy::OnTouch,
            Policy::AccessCounter,
            Policy::Duplication,
            Policy::Ideal,
            Policy::oasis(),
            Policy::oasis_inmem(),
            Policy::grit(),
        ] {
            let r = simulate(&config, policy, &trace);
            assert!(r.total_time.as_us() > 0.0, "{app}: zero time");
            assert_eq!(r.accesses as usize, trace.total_accesses(), "{app}");
            assert!(r.uvm.far_faults > 0, "{app}: something must fault");
        }
    }
}

#[test]
fn oasis_beats_uniform_policies_on_average() {
    // The headline claim at reduced scale: OASIS's geomean speedup over
    // each uniform policy is positive.
    let config = SystemConfig::default();
    let mut log_vs = [0.0f64; 3];
    for app in ALL_APPS {
        let trace = generate(app, &tiny(app));
        let oasis = simulate(&config, Policy::oasis(), &trace);
        for (i, p) in [Policy::OnTouch, Policy::AccessCounter, Policy::Duplication]
            .into_iter()
            .enumerate()
        {
            let r = simulate(&config, p, &trace);
            log_vs[i] += oasis.speedup_over(&r).ln();
        }
    }
    let n = ALL_APPS.len() as f64;
    let [vs_ot, vs_ac, vs_dup] = log_vs.map(|s| (s / n).exp());
    assert!(vs_ot > 1.15, "OASIS vs on-touch geomean {vs_ot:.2} too low");
    assert!(vs_ac > 1.0, "OASIS vs access-counter geomean {vs_ac:.2}");
    assert!(vs_dup > 1.0, "OASIS vs duplication geomean {vs_dup:.2}");
}

#[test]
fn oasis_reduces_faults_vs_grit_on_average() {
    let config = SystemConfig::default();
    let mut log_ratio = 0.0f64;
    for app in ALL_APPS {
        let trace = generate(app, &tiny(app));
        let oasis = simulate(&config, Policy::oasis(), &trace);
        let grit = simulate(&config, Policy::grit(), &trace);
        log_ratio += (oasis.uvm.total_faults() as f64 / grit.uvm.total_faults().max(1) as f64).ln();
    }
    let ratio = (log_ratio / ALL_APPS.len() as f64).exp();
    assert!(
        ratio < 1.0,
        "OASIS must fault less than GRIT, got {ratio:.2}"
    );
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let config = SystemConfig::default();
    for app in [App::Bfs, App::St, App::LeNet] {
        let trace = generate(app, &tiny(app));
        let a = simulate(&config, Policy::oasis(), &trace);
        let b = simulate(&config, Policy::oasis(), &trace);
        assert_eq!(a.total_time, b.total_time, "{app}");
        assert_eq!(a.uvm, b.uvm, "{app}");
        assert_eq!(a.policy_mix, b.policy_mix, "{app}");
        assert_eq!(a.nvlink_bytes, b.nvlink_bytes, "{app}");
    }
}

#[test]
fn gpu_scaling_runs_at_8_and_16() {
    for gpus in [8usize, 16] {
        let config = SystemConfig::with_gpus(gpus);
        let app = App::Mm;
        let trace = generate(
            app,
            &WorkloadParams {
                footprint_mb: 16,
                ..WorkloadParams::small(app, gpus)
            },
        );
        assert_eq!(trace.gpu_count, gpus);
        let base = simulate(&config, Policy::OnTouch, &trace);
        let oasis = simulate(&config, Policy::oasis(), &trace);
        assert!(
            oasis.speedup_over(&base) > 0.9,
            "OASIS must stay competitive at {gpus} GPUs"
        );
    }
}

#[test]
fn large_pages_cut_fault_counts() {
    // MT's partitioned output: 2 MB pages mean far fewer translations to
    // populate, hence fewer far faults.
    let app = App::Mt;
    let trace = generate(app, &tiny(app));
    let base4k = simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
    let base2m = simulate(&SystemConfig::with_large_pages(), Policy::OnTouch, &trace);
    assert!(base2m.uvm.total_faults() < base4k.uvm.total_faults());
}

#[test]
fn oasis_still_helps_with_large_pages() {
    // Section VI-B4: OASIS remains effective at 2 MB granularity (the
    // paper's +43%), even though 2 MB pages convert private pages into
    // shared ones (verified at page level in the characterization tests).
    let large = SystemConfig::with_large_pages();
    let mut log_gain = 0.0f64;
    for app in [App::C2d, App::Mm, App::Mt] {
        let trace = generate(app, &WorkloadParams::small(app, 4));
        let gain = simulate(&large, Policy::oasis(), &trace).speedup_over(&simulate(
            &large,
            Policy::OnTouch,
            &trace,
        ));
        log_gain += gain.ln();
    }
    let gain = (log_gain / 3.0).exp();
    assert!(
        gain > 1.0,
        "OASIS must still help at 2MB pages, got {gain:.2}"
    );
}

#[test]
fn striped_placement_still_works_for_oasis() {
    let config = SystemConfig {
        placement: Placement::Striped,
        ..SystemConfig::default()
    };
    // MM's shared-read operands: striping makes every page look shared,
    // which is exactly where duplication recovers locality.
    for app in [App::Mm, App::C2d] {
        let trace = generate(app, &tiny(app));
        let base = simulate(&config, Policy::OnTouch, &trace);
        let oasis = simulate(&config, Policy::oasis(), &trace);
        assert!(
            oasis.speedup_over(&base) > 0.9,
            "{app}: OASIS must stay competitive under striped placement"
        );
    }
}

#[test]
fn oversubscription_evicts_but_oasis_stays_competitive() {
    // Section VI-D's caveat holds in the reproduction too: eviction costs
    // dominate and shrink OASIS's advantage; it must at least not regress
    // materially versus the on-touch baseline.
    let app = App::LeNet;
    let trace = generate(app, &tiny(app));
    let config = SystemConfig::default().with_oversubscription(trace.footprint_bytes(), 150);
    let base = simulate(&config, Policy::OnTouch, &trace);
    let oasis = simulate(&config, Policy::oasis(), &trace);
    assert!(base.uvm.evictions > 0, "oversubscription must evict");
    assert!(
        oasis.speedup_over(&base) > 0.9,
        "OASIS must stay competitive under oversubscription, got {:.2}",
        oasis.speedup_over(&base)
    );
}
