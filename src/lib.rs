//! # OASIS: object-aware page management for multi-GPU systems
//!
//! A full Rust reproduction of *OASIS: Object-Aware Page Management for
//! Multi-GPU Systems* (HPCA 2025): a trace-driven, event-driven multi-GPU
//! memory-system simulator (UVM driver, TLB hierarchy, NVLink/PCIe fabric),
//! the three uniform page-management policies plus the hypothetical Ideal
//! configuration, the OASIS object-aware policy controller and its
//! software-only OASIS-InMem variant, the GRIT per-page baseline, and
//! pattern-faithful generators for the paper's eleven applications.
//!
//! This facade crate re-exports every component crate; depend on it to get
//! the whole stack, or on the individual `oasis-*` crates for pieces.
//!
//! ## Quickstart
//!
//! ```
//! use oasis::mgpu::{simulate, Policy, SystemConfig};
//! use oasis::workloads::{generate, App, WorkloadParams};
//!
//! // Matrix Transpose on the paper's 4-GPU platform, small input.
//! let trace = generate(App::Mt, &WorkloadParams::small(App::Mt, 4));
//! let baseline = simulate(&SystemConfig::default(), Policy::OnTouch, &trace);
//! let oasis = simulate(&SystemConfig::default(), Policy::oasis(), &trace);
//! assert!(oasis.speedup_over(&baseline) >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`engine`] | `oasis-engine` | discrete-event kernel: time, event queue, bandwidth channels |
//! | [`mem`] | `oasis-mem` | TLBs, caches, page tables, frames, address space |
//! | [`interconnect`] | `oasis-interconnect` | NVLink/PCIe fabric |
//! | [`uvm`] | `oasis-uvm` | UVM driver, fault mechanics, uniform policies |
//! | [`core`] | `oasis-core` | **OASIS**: Object Tracker, O-Table, OP-Controller, InMem |
//! | [`grit`] | `oasis-grit` | GRIT per-page baseline |
//! | [`workloads`] | `oasis-workloads` | the 11 application trace generators |
//! | [`mgpu`] | `oasis-mgpu` | system assembly, simulation loop, characterization |
//! | [`fuzz`] | `oasis-fuzz` | scenario fuzzer: generator, differential oracle, shrinker, corpus |
//! | [`serve`] | `oasis-serve` | crash-durable sweep server: job queue, result cache, wire protocol |

pub use oasis_core as core;
pub use oasis_engine as engine;
pub use oasis_fuzz as fuzz;
pub use oasis_grit as grit;
pub use oasis_interconnect as interconnect;
pub use oasis_mem as mem;
pub use oasis_mgpu as mgpu;
pub use oasis_serve as serve;
pub use oasis_uvm as uvm;
pub use oasis_workloads as workloads;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use oasis_core::controller::{OasisConfig, OasisController};
    pub use oasis_core::inmem::OasisInMem;
    pub use oasis_grit::{GritConfig, GritEngine};
    pub use oasis_mem::types::{AccessKind, DeviceId, GpuId, ObjectId, PageSize, Va, Vpn};
    pub use oasis_mgpu::{simulate, Placement, Policy, RunReport, System, SystemConfig};
    pub use oasis_workloads::{generate, App, Trace, TraceBuilder, WorkloadParams, ALL_APPS};
}
